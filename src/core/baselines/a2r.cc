#include "core/baselines/a2r.h"

#include <utility>

#include "nn/loss.h"

namespace dar {
namespace core {

A2rModel::A2rModel(Tensor embeddings, TrainConfig config)
    : RationalizerBase(std::move(embeddings), config, "A2R"),
      soft_predictor_(embeddings_, config_, rng_) {}

ag::Variable A2rModel::TrainLoss(const data::Batch& batch) {
  nn::GumbelMask mask;
  ag::Variable hard_logits;
  ag::Variable core = RnpCoreLoss(batch, &mask, &hard_logits);

  // Auxiliary head reads the soft-attended input: every token contributes,
  // weighted by its selection probability.
  ag::Variable soft_logits = soft_predictor_.Forward(batch, mask.soft);
  ag::Variable soft_ce = nn::CrossEntropy(soft_logits, batch.labels);
  ag::Variable js = nn::JsDivergence(hard_logits, soft_logits);

  return ag::Add(ag::Add(core, soft_ce),
                 ag::MulScalar(js, config_.aux_weight));
}

std::vector<ag::Variable> A2rModel::TrainableParameters() const {
  std::vector<ag::Variable> params = RationalizerBase::TrainableParameters();
  for (const nn::NamedParameter& p : soft_predictor_.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  return params;
}

void A2rModel::SetTraining(bool training) {
  RationalizerBase::SetTraining(training);
  soft_predictor_.SetTraining(training);
}

int64_t A2rModel::TotalParameters() const {
  return RationalizerBase::TotalParameters() + CountTrainable(soft_predictor_);
}

}  // namespace core
}  // namespace dar
