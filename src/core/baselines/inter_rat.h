// Inter_RAT — Interventional Rationalization (Yue et al., 2023).
//
// Inter_RAT casts spurious correlations in rationalization as confounding
// and removes them with backdoor adjustment: predictions conditioned on the
// rationale should be invariant to interventions on the non-rationale
// context. We approximate the intervention by swapping each example's
// unselected context with another example's tokens and penalizing the
// divergence between the original and intervened predictions.
#ifndef DAR_CORE_BASELINES_INTER_RAT_H_
#define DAR_CORE_BASELINES_INTER_RAT_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// Reimplementation of Inter_RAT's objective ("re-Inter_RAT"):
///   CE(Y, P(Z)) + w * KL(P(Z).detach() || P(Z_intervened)) + Omega.
class InterRatModel : public RationalizerBase {
 public:
  InterRatModel(Tensor embeddings, TrainConfig config);

  ag::Variable TrainLoss(const data::Batch& batch) override;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_BASELINES_INTER_RAT_H_
