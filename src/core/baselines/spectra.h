// SPECTRA — Sparse Structured Text Rationalization
// (Guerreiro & Martins, EMNLP 2021).
//
// SPECTRA replaces stochastic sampling with *deterministic* structured
// selection under a budget constraint, relaxed for end-to-end training. We
// implement the budget factor: exactly a target fraction of tokens is
// selected per example by top-k over the generator scores, trained with a
// straight-through relaxation.
#ifndef DAR_CORE_BASELINES_SPECTRA_H_
#define DAR_CORE_BASELINES_SPECTRA_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// Deterministic budgeted top-k baseline ("re-SPECTRA").
class SpectraModel : public RationalizerBase {
 public:
  SpectraModel(Tensor embeddings, TrainConfig config);

  ag::Variable TrainLoss(const data::Batch& batch) override;
  /// Test-time selection: budgeted top-k over the selection scores.
  Tensor EvalMaskFromStatesConst(const data::Batch& batch,
                                 const Tensor& gen_states) const override;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_BASELINES_SPECTRA_H_
