// VIB — An Information Bottleneck Approach for Controlling Conciseness in
// Rationale Extraction (Paranjape et al., EMNLP 2020).
//
// The generator emits per-token keep probabilities; training adds a KL
// penalty pulling them toward a Bernoulli prior pi (the sparsity budget)
// and the predictor reads the softly masked input. At test time the
// highest-probability pi-fraction of tokens is selected.
#ifndef DAR_CORE_BASELINES_VIB_H_
#define DAR_CORE_BASELINES_VIB_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// Selects, per example, the `fraction` highest-scoring valid tokens
/// (at least one). Shared by the VIB and SPECTRA test-time selections.
Tensor BudgetTopKMask(const Tensor& scores, const Tensor& valid,
                      float fraction);

/// Reimplementation of VIB's objective:
///   CE(Y, P(X ⊙ p)) + w * KL(Bernoulli(p) || Bernoulli(pi)),
/// pi = config.sparsity_target; test-time selection is budgeted top-k.
class VibModel : public RationalizerBase {
 public:
  VibModel(Tensor embeddings, TrainConfig config);

  ag::Variable TrainLoss(const data::Batch& batch) override;
  /// Test-time selection: budgeted top-k over the selection scores.
  Tensor EvalMaskFromStatesConst(const data::Batch& batch,
                                 const Tensor& gen_states) const override;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_BASELINES_VIB_H_
