#include "core/baselines/car.h"

#include <utility>

#include "nn/loss.h"

namespace dar {
namespace core {

CarModel::CarModel(Tensor embeddings, TrainConfig config)
    : RationalizerBase(std::move(embeddings), config, "CAR"),
      counter_generator_(embeddings_, config_, rng_) {}

ag::Variable CarModel::TrainLoss(const data::Batch& batch) {
  // Factual branch: identical to the RNP core.
  nn::GumbelMask factual;
  ag::Variable core = RnpCoreLoss(batch, &factual);

  // Counterfactual branch: the counterfactual generator selects text that
  // *imitates the opposite class*; the predictor must still recover the
  // true class from it (it learns class-wise evidence), while the
  // counterfactual generator adversarially tries to flip it. Gradient
  // reversal on the mask implements the two-sided game in one pass.
  nn::GumbelMask counter = counter_generator_.SampleMask(batch, rng_);
  ag::Variable adversarial_mask = ag::GradientReversal(counter.hard, 1.0f);
  ag::Variable counter_logits = predictor_.Forward(batch, adversarial_mask);
  ag::Variable counter_ce = nn::CrossEntropy(counter_logits, batch.labels);
  ag::Variable counter_omega =
      SparsityCoherencePenalty(counter, batch.valid, config_);

  return ag::Add(core, ag::Add(ag::MulScalar(counter_ce, config_.aux_weight),
                               counter_omega));
}

std::vector<ag::Variable> CarModel::TrainableParameters() const {
  std::vector<ag::Variable> params = RationalizerBase::TrainableParameters();
  for (const nn::NamedParameter& p : counter_generator_.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  return params;
}

void CarModel::SetTraining(bool training) {
  RationalizerBase::SetTraining(training);
  counter_generator_.SetTraining(training);
}

int64_t CarModel::TotalParameters() const {
  return RationalizerBase::TotalParameters() +
         CountTrainable(counter_generator_);
}

}  // namespace core
}  // namespace dar
