#include "core/baselines/three_player.h"

#include <utility>

#include "nn/loss.h"

namespace dar {
namespace core {

ThreePlayerModel::ThreePlayerModel(Tensor embeddings, TrainConfig config)
    : RationalizerBase(std::move(embeddings), config, "3PLAYER"),
      complement_predictor_(embeddings_, config_, rng_) {}

ag::Variable ThreePlayerModel::TrainLoss(const data::Batch& batch) {
  nn::GumbelMask mask;
  ag::Variable core = RnpCoreLoss(batch, &mask);

  // Complement mask: valid positions not selected by the generator. The
  // gradient reversal sits between the mask and the complement predictor:
  // P_c's parameters receive the ordinary minimizing gradient, while the
  // generator (through the mask) receives the *negated* one — it wants the
  // complement to be uninformative.
  ag::Variable complement =
      ag::Sub(ag::Variable::Constant(batch.valid), mask.hard);
  ag::Variable adversarial = ag::GradientReversal(complement, 1.0f);
  ag::Variable comp_logits = complement_predictor_.Forward(batch, adversarial);
  ag::Variable comp_ce = nn::CrossEntropy(comp_logits, batch.labels);

  return ag::Add(core, ag::MulScalar(comp_ce, config_.aux_weight));
}

std::vector<ag::Variable> ThreePlayerModel::TrainableParameters() const {
  std::vector<ag::Variable> params = RationalizerBase::TrainableParameters();
  for (const nn::NamedParameter& p : complement_predictor_.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  return params;
}

void ThreePlayerModel::SetTraining(bool training) {
  RationalizerBase::SetTraining(training);
  complement_predictor_.SetTraining(training);
}

int64_t ThreePlayerModel::TotalParameters() const {
  return RationalizerBase::TotalParameters() +
         CountTrainable(complement_predictor_);
}

}  // namespace core
}  // namespace dar
