#include "core/baselines/inter_rat.h"

#include <algorithm>
#include <utility>

#include "nn/loss.h"

namespace dar {
namespace core {

InterRatModel::InterRatModel(Tensor embeddings, TrainConfig config)
    : RationalizerBase(std::move(embeddings), config, "Inter_RAT") {}

ag::Variable InterRatModel::TrainLoss(const data::Batch& batch) {
  nn::GumbelMask mask;
  ag::Variable logits;
  ag::Variable core = RnpCoreLoss(batch, &mask, &logits);

  // Intervene on the context: each example's unselected positions take the
  // tokens of a random other example in the batch (a cyclic shift by a
  // random offset keeps it one permutation per batch).
  int64_t b = batch.batch_size();
  int64_t shift = 1 + static_cast<int64_t>(
                          rng().Below(static_cast<uint32_t>(std::max<int64_t>(b - 1, 1))));
  std::vector<std::vector<int64_t>> alt_tokens(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    alt_tokens[static_cast<size_t>(i)] =
        batch.tokens[static_cast<size_t>((i + shift) % b)];
  }
  ag::Variable intervened = predictor_.ForwardMixed(batch, alt_tokens, mask.hard);

  // Backdoor consistency: the prediction from the rationale must not move
  // when the context is resampled.
  ag::Variable target = ag::SoftmaxRowsOp(logits).Detach();
  ag::Variable consistency = nn::KlDivergence(target, intervened);
  // The intervened pass also supervises directly (rationale should predict
  // Y under any context).
  ag::Variable intervened_ce = nn::CrossEntropy(intervened, batch.labels);

  return ag::Add(core, ag::MulScalar(ag::Add(consistency, intervened_ce),
                                     config_.aux_weight));
}

}  // namespace core
}  // namespace dar
