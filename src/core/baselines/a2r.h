// A2R — "Understanding Interlocking Dynamics of Cooperative
// Rationalization" (Yu et al., NeurIPS 2021).
//
// A2R adds an auxiliary predictor that reads the input weighted by the
// generator's *soft* attention (so it always sees a smoothed version of the
// whole text) and ties the two predictors together with a JS divergence.
// This conveys full-text information to the game, mitigating interlocking;
// the paper's critique is that aligning the two predictors' *outputs* does
// not align their *inputs*, so rationale shift can persist.
#ifndef DAR_CORE_BASELINES_A2R_H_
#define DAR_CORE_BASELINES_A2R_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// Token-level reimplementation of A2R (matching the paper's "re-A2R"):
///   CE(Y, P(Z_hard)) + CE(Y, P_soft(X ⊙ p)) + w * JS(P, P_soft) + Omega.
class A2rModel : public RationalizerBase {
 public:
  A2rModel(Tensor embeddings, TrainConfig config);

  ag::Variable TrainLoss(const data::Batch& batch) override;
  std::vector<ag::Variable> TrainableParameters() const override;
  void SetTraining(bool training) override;
  int64_t NumModules() const override { return 3; }
  int64_t TotalParameters() const override;

  Predictor& soft_predictor() { return soft_predictor_; }

 private:
  Predictor soft_predictor_;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_BASELINES_A2R_H_
