// DMR — Distribution Matching for Rationalization (Huang et al., 2021).
//
// DMR trains an extra predictor on the *full text* alongside the game and
// matches the rationale predictor's output distribution to the full-text
// teacher's (output-level alignment). The paper's critique (Section II):
// because the teacher co-trains from scratch and only *outputs* are
// aligned, the rationale can still deviate from the input — DMR fixes
// degeneration but not general rationale shift.
#ifndef DAR_CORE_BASELINES_DMR_H_
#define DAR_CORE_BASELINES_DMR_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// Reimplementation of DMR's objective on the shared skeleton:
///   CE(Y, P(Z)) + CE(Y, T(X)) + w * KL(softmax(T(X)).detach() || P(Z)) + Omega.
class DmrModel : public RationalizerBase {
 public:
  DmrModel(Tensor embeddings, TrainConfig config);

  ag::Variable TrainLoss(const data::Batch& batch) override;
  std::vector<ag::Variable> TrainableParameters() const override;
  void SetTraining(bool training) override;
  int64_t NumModules() const override { return 3; }
  int64_t TotalParameters() const override;

  Predictor& teacher() { return teacher_; }

 private:
  Predictor teacher_;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_BASELINES_DMR_H_
