#include "core/baselines/dmr.h"

#include <utility>

#include "nn/loss.h"

namespace dar {
namespace core {

DmrModel::DmrModel(Tensor embeddings, TrainConfig config)
    : RationalizerBase(std::move(embeddings), config, "DMR"),
      teacher_(embeddings_, config_, rng_) {}

ag::Variable DmrModel::TrainLoss(const data::Batch& batch) {
  nn::GumbelMask mask;
  ag::Variable rationale_logits;
  ag::Variable core = RnpCoreLoss(batch, &mask, &rationale_logits);

  // Teacher learns the full-text task during the game (co-trained, unlike
  // DAR's frozen pretrained discriminator).
  ag::Variable teacher_logits = teacher_.ForwardFullText(batch);
  ag::Variable teacher_ce = nn::CrossEntropy(teacher_logits, batch.labels);

  // Output-distribution matching: pull the rationale predictor's output
  // toward the (detached) teacher distribution.
  ag::Variable teacher_probs = ag::SoftmaxRowsOp(teacher_logits).Detach();
  ag::Variable match = nn::KlDivergence(teacher_probs, rationale_logits);

  return ag::Add(ag::Add(core, teacher_ce),
                 ag::MulScalar(match, config_.aux_weight));
}

std::vector<ag::Variable> DmrModel::TrainableParameters() const {
  std::vector<ag::Variable> params = RationalizerBase::TrainableParameters();
  for (const nn::NamedParameter& p : teacher_.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  return params;
}

void DmrModel::SetTraining(bool training) {
  RationalizerBase::SetTraining(training);
  teacher_.SetTraining(training);
}

int64_t DmrModel::TotalParameters() const {
  return RationalizerBase::TotalParameters() + CountTrainable(teacher_);
}

}  // namespace core
}  // namespace dar
