// CAR — Class-wise Adversarial Rationalization (Chang et al., NeurIPS 2019).
//
// CAR plays a class-wise game: a factual generator selects evidence *for*
// the true class, a counterfactual generator selects evidence for the
// opposite class, and the discriminating predictor must recover the source
// class either way. We reimplement the game with two generators and a
// gradient-reversal adversarial coupling on the counterfactual branch.
// Like the original, CAR uses the label to route generation, so rationale-
// prediction accuracy is not reported for it (the paper's "N/A" cells).
#ifndef DAR_CORE_BASELINES_CAR_H_
#define DAR_CORE_BASELINES_CAR_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// Class-wise adversarial baseline ("re-CAR").
class CarModel : public RationalizerBase {
 public:
  CarModel(Tensor embeddings, TrainConfig config);

  ag::Variable TrainLoss(const data::Batch& batch) override;
  std::vector<ag::Variable> TrainableParameters() const override;
  void SetTraining(bool training) override;
  int64_t NumModules() const override { return 3; }
  int64_t TotalParameters() const override;

 private:
  /// Counterfactual generator (the factual one is the base generator_).
  Generator counter_generator_;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_BASELINES_CAR_H_
