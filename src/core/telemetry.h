// Training-telemetry glue between the trainers and src/obs/: the frozen
// full-text probe behind the rationale-shift gauge, and the per-epoch
// aggregation both Fit() paths share.
#ifndef DAR_CORE_TELEMETRY_H_
#define DAR_CORE_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "core/rationalizer.h"
#include "obs/train_observer.h"

namespace dar {
namespace core {

/// The frozen reference predictor behind the rationale-shift gauge.
///
/// Construction pretrains a predictor on the *full input* (the eq. 4
/// protocol DAR uses for predictor^t) and freezes it. MeasureShift then
/// reports, for a batch, how much label cross-entropy this fixed reader
/// loses when it reads the model's current deterministic rationale Z
/// instead of the full input X:
///
///   shift = max(0, mean_i [ H(y_i, P_probe(Z_i)) - H(y_i, P_probe(X_i)) ]).
///
/// A rationale whose semantics stay aligned with the input carries the
/// evidence the full-text reader keys on (gap near zero); a deviated
/// rationale is legible only to the predictor that drifted along with the
/// generator, and the frozen probe falls back toward chance — the
/// collusion signature of paper Fig. 3, live per batch. Because the probe
/// is compared against *itself* on the two inputs, the gauge is
/// insensitive to how confident or accurate the co-trained predictor
/// happens to be. DAR's alignment term trains Z to be classified
/// correctly by exactly such a frozen full-text predictor, so the gauge
/// visibly shrinks for DAR against vanilla RNP.
///
/// The probe draws from its own RNG streams and only runs eval-mode
/// forwards, so attaching one never perturbs the observed training
/// trajectory (asserted in tests/obs_test.cc).
class RationaleShiftProbe {
 public:
  /// Pretrains the probe for `model.config().pretrain_epochs` full-text
  /// epochs on `dataset` with the model's architecture and embeddings.
  RationaleShiftProbe(const RationalizerBase& model,
                      const datasets::SyntheticDataset& dataset);

  /// Mean rationale-vs-full-text CE gap of the frozen probe on the batch.
  /// Toggles the model through eval mode and back (no RNG consumed).
  double MeasureShift(RationalizerBase& model, const data::Batch& batch);

  /// Dev-set full-text accuracy the probe reached (sanity signal: a probe
  /// at chance level measures nothing).
  float dev_accuracy() const { return dev_acc_; }

 private:
  /// Declared before probe_: the constructor feeds it to Predictor's
  /// weight initialization.
  Pcg32 init_rng_;
  Predictor probe_;
  float dev_acc_ = 0.0f;
};

/// Accumulates per-batch telemetry into the epoch means both trainers
/// report through TrainObserver::OnEpoch.
class EpochTelemetryAccumulator {
 public:
  void Add(const obs::BatchTelemetry& batch);
  /// Epoch summary; `train_loss` and `dev_acc` come from the trainer's own
  /// bookkeeping (identical to the values in TrainRun). Resets the
  /// accumulator for the next epoch.
  obs::EpochTelemetry Finish(int64_t epoch, const std::string& model,
                             double train_loss, double dev_acc);

 private:
  int64_t batches_ = 0;
  int64_t breakdown_batches_ = 0;
  int64_t align_batches_ = 0;
  int64_t shift_batches_ = 0;
  double task_ce_ = 0.0;
  double align_ce_ = 0.0;
  double omega_ = 0.0;
  double grad_norm_ = 0.0;
  double sparsity_ = 0.0;
  double shift_ = 0.0;
};

/// Builds the BatchTelemetry record for one optimizer step from the
/// model's stashed loss breakdown.
obs::BatchTelemetry MakeBatchTelemetry(int64_t epoch, int64_t batch,
                                       double loss, double grad_norm,
                                       const LossBreakdown& breakdown);

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_TELEMETRY_H_
