// Shared training configuration for all rationalization methods.
#ifndef DAR_CORE_TRAIN_CONFIG_H_
#define DAR_CORE_TRAIN_CONFIG_H_

#include <cstdint>

#include "nn/transformer.h"

namespace dar {
namespace core {

/// Which sequence encoder the players use.
enum class EncoderKind {
  /// Bidirectional GRU — the paper's main setting (200-d GRUs + GloVe,
  /// scaled down here).
  kBiGru,
  /// Pretrained Transformer — the paper's BERT setting (Table VI).
  kTransformer,
};

/// Hyper-parameters shared by the generator, predictors, and trainer.
///
/// Defaults are the scaled-to-one-CPU-core analogue of the paper's setup
/// (Appendix B / Table X): Adam, Gumbel-softmax sampling, sparsity and
/// coherence regularization, early stopping on dev accuracy.
struct TrainConfig {
  // Model sizes.
  int64_t embedding_dim = 32;
  int64_t hidden_dim = 24;  // per direction; BiGRU output is 2x
  int64_t num_classes = 2;
  EncoderKind encoder = EncoderKind::kBiGru;
  nn::TransformerConfig transformer;

  // Optimization.
  float lr = 1e-3f;
  int64_t batch_size = 64;
  int64_t epochs = 10;
  float grad_clip = 5.0f;
  /// Reserved knob: the GRU players are small enough not to need dropout
  /// (matching the reference implementations); the Transformer setting
  /// regularizes via `transformer.dropout` instead.
  float dropout = 0.1f;

  // Rationale regularization (eq. 3).
  float sparsity_target = 0.15f;   // alpha
  float sparsity_lambda = 5.0f;   // lambda_1
  float coherence_lambda = 0.5f;   // lambda_2

  // Gumbel-softmax temperature.
  float tau = 1.0f;

  // Method-specific loss weights (interpretation depends on the method:
  // DAR's discriminator term, DMR's KL, A2R's JS, 3PLAYER's complement
  // term, Inter_RAT's intervention KL, VIB's prior KL).
  float aux_weight = 1.0f;

  // Epochs of full-text pretraining for DAR's discriminator (eq. 4) and
  // other pretrained auxiliaries.
  int64_t pretrain_epochs = 5;

  // Reproducibility.
  uint64_t seed = 42;

  /// GEMM kernel threads for large encoder matmuls (tensor/gemm.h). Fit()
  /// applies the knob process-wide at entry: n > 1 builds the kernel pool
  /// (results stay bit-identical to single-threaded — the M partition is
  /// fixed, see gemm.h), 1 forces the inline path, 0 leaves the current
  /// process setting untouched. Composes with data-parallel training: the
  /// shard replicas share one kernel pool.
  int kernel_threads = 0;

  /// When true, Fit() runs the autograd graph auditor (check/graph_audit.h)
  /// on the very first training step, right after the first Backward():
  /// the optimizer's parameter list is cross-checked against the recorded
  /// tape, and any finding — an orphaned (detached or frozen-but-optimized)
  /// parameter, a missing/stale/doubled gradient, a shape mismatch, NaN/Inf
  /// — prints the full report to stderr and aborts before the first
  /// optimizer step can bake the defect into the weights. One audit on step
  /// 0 only; the remaining steps run at full speed.
  bool audit_first_step = false;

  /// Returns a copy with the sparsity target set to `alpha` (benches use
  /// this to match each dataset's human-annotation sparsity, as the paper
  /// does).
  TrainConfig WithSparsityTarget(float alpha) const {
    TrainConfig c = *this;
    c.sparsity_target = alpha;
    return c;
  }
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_TRAIN_CONFIG_H_
