#include "core/regularizer.h"

#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {

ag::Variable SparsityCoherencePenalty(const nn::GumbelMask& mask,
                                      const Tensor& valid,
                                      const TrainConfig& config) {
  // Penalize the *hard* mask (straight-through gradients reach the
  // generator): the soft relaxation admits a degenerate flat solution
  // (every probability ≈ alpha) that satisfies the penalty while selecting
  // almost nothing after thresholding.
  const ag::Variable& m = mask.hard;
  DAR_CHECK(m.value().shape() == valid.shape());
  int64_t b = valid.size(0), t = valid.size(1);

  // Per-example normalization, as in eq. 3: each example contributes
  // | ||M||_1 / l - alpha |, averaged over the batch. (Pooling counts over
  // the whole batch instead would dilute the per-token gradient by the
  // batch size and leave the selection rate badly under target.)
  Tensor inv_len(Shape{b});
  for (int64_t i = 0; i < b; ++i) {
    float len = 0.0f;
    for (int64_t j = 0; j < t; ++j) len += valid.at(i, j);
    DAR_CHECK_GT(len, 0.0f);
    inv_len.at(i) = 1.0f / len;
  }
  ag::Variable per_example_rate =
      ag::Mul(ag::RowSum(m), ag::Variable::Constant(inv_len));
  ag::Variable sparsity_term = ag::Mean(
      ag::Abs(ag::AddScalar(per_example_rate, -config.sparsity_target)));
  ag::Variable result = ag::MulScalar(sparsity_term, config.sparsity_lambda);

  // Coherence: per-example mean |m_t - m_{t-1}| over adjacent valid pairs,
  // averaged over the batch.
  if (t > 1) {
    Tensor pair_valid(Shape{b, t - 1});
    Tensor inv_pairs(Shape{b});
    bool any = false;
    for (int64_t i = 0; i < b; ++i) {
      float pairs = 0.0f;
      for (int64_t j = 0; j + 1 < t; ++j) {
        float v = valid.at(i, j) * valid.at(i, j + 1);
        pair_valid.at(i, j) = v;
        pairs += v;
      }
      inv_pairs.at(i) = pairs > 0.0f ? 1.0f / pairs : 0.0f;
      if (pairs > 0.0f) any = true;
    }
    if (any) {
      ag::Variable diffs = ag::Abs(ag::TimeDiff(m));
      ag::Variable masked =
          ag::Mul(diffs, ag::Variable::Constant(pair_valid));
      ag::Variable per_example =
          ag::Mul(ag::RowSum(masked), ag::Variable::Constant(inv_pairs));
      result = ag::Add(result, ag::MulScalar(ag::Mean(per_example),
                                             config.coherence_lambda));
    }
  }
  return result;
}

}  // namespace core
}  // namespace dar
