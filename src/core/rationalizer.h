// Base class shared by every rationalization method in this repository
// (RNP, DAR, and the baselines under core/baselines/).
#ifndef DAR_CORE_RATIONALIZER_H_
#define DAR_CORE_RATIONALIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/generator.h"
#include "core/predictor.h"
#include "core/regularizer.h"
#include "core/train_config.h"
#include "data/batch.h"
#include "datasets/synthetic_review.h"
#include "nn/checkpoint.h"

namespace dar {
namespace core {

/// Components of the last TrainLoss() computed on a model, for telemetry.
/// Methods built on RnpCoreLoss fill task_ce / omega / sparsity (valid
/// becomes true); DAR additionally fills align_ce (has_align). Methods
/// with bespoke losses leave it invalid and only the total is observable.
struct LossBreakdown {
  /// H_c(Y, P(Z)) — the informativeness cross-entropy (eq. 2).
  float task_ce = 0.0f;
  /// H_c(Y, P^t(Z)) — DAR's discriminative-alignment term (eq. 5),
  /// unweighted (the loss applies config.aux_weight on top).
  float align_ce = 0.0f;
  /// Omega(M) — the sparsity + coherence regularizer (eq. 3).
  float omega = 0.0f;
  /// Fraction of valid tokens the sampled hard mask selected.
  float sparsity = 0.0f;
  bool has_align = false;
  bool valid = false;
};

/// A rationalization method: a generator/predictor pair plus a
/// method-specific training loss. Subclasses add auxiliary modules
/// (DAR's frozen discriminator, DMR's teacher, A2R's soft predictor, ...)
/// and override TrainLoss.
class RationalizerBase {
 public:
  /// `embeddings` is the shared pretrained [vocab, E] table; every player
  /// embeds the input independently (as in the reference implementations)
  /// but from the same frozen vectors.
  RationalizerBase(Tensor embeddings, TrainConfig config, std::string name);
  virtual ~RationalizerBase() = default;

  RationalizerBase(const RationalizerBase&) = delete;
  RationalizerBase& operator=(const RationalizerBase&) = delete;

  /// Builds the training loss for one batch (training mode, stochastic
  /// masks). Called inside Fit()'s inner loop.
  virtual ag::Variable TrainLoss(const data::Batch& batch) = 0;

  /// One-time setup before training (e.g. DAR pretrains and freezes its
  /// discriminator here, eq. 4). Default: nothing.
  virtual void Prepare(const datasets::SyntheticDataset& dataset);

  /// Parameters updated by the optimizer. Default: generator + predictor.
  virtual std::vector<ag::Variable> TrainableParameters() const;

  /// TrainableParameters() with human-readable names resolved by matching
  /// Variable handles against the checkpoint modules
  /// ("generator/gru.w_ih", ...); unmatched handles get positional names.
  /// This is the parameter list the graph auditor wants (Fit()'s
  /// audit_first_step pass and dar_check's model-zoo harness both use it).
  /// Non-const because CheckpointModules() is.
  std::vector<nn::NamedParameter> NamedTrainableParameters();

  /// Train/eval mode for all modules. Default: generator + predictor.
  virtual void SetTraining(bool training);

  /// Deterministic rationale mask for evaluation, [B, T]. Toggles the model
  /// into eval mode around the computation and restores the previous mode;
  /// training-time evaluation goes through here.
  Tensor EvalMask(const data::Batch& batch);

  /// The mask computation behind EvalMask, with no mode toggling: the model
  /// must already be in eval mode (SetTraining(false)). Const and
  /// thread-compatible — the serving layer (src/serve/) calls this from
  /// many worker threads on distinct batches concurrently.
  ///
  /// Non-virtual by design: it is defined as the composition
  /// EvalMaskFromStatesConst(batch, GenEncoderStatesConst(batch)), so a
  /// serving cache that stores generator encoder states and re-runs only
  /// the second stage is bit-identical to this cold path by construction.
  /// Methods customize the selection rule by overriding
  /// EvalMaskFromStatesConst (VIB/SPECTRA: budgeted top-k; RNP*: best
  /// sentence).
  Tensor EvalMaskConst(const data::Batch& batch) const;

  // ---- Serving-cache decomposition -----------------------------------------
  //
  // The serving cache (serve/cache.h) stores the two players' post-encoder
  // hidden states per token sequence and re-runs only the cheap head
  // stages on a hit. EvalMaskConst and PredictLogitsConst are defined as
  // compositions of the four stages below, so "fast path == slow path" is
  // a structural identity, certified bit-for-bit by
  // tests/serve_cache_test.cc. All stages require eval mode and are const
  // and thread-compatible.

  /// Generator's post-encoder hidden states [B, T, H_g]. `embedded`
  /// optionally substitutes the [B, T, E] embedded input (values must
  /// equal the embedding-table rows for batch.tokens — the serving cache
  /// assembles it from cached rows).
  Tensor GenEncoderStatesConst(const data::Batch& batch,
                               const Tensor* embedded = nullptr) const;

  /// The eval mask derived from precomputed generator states: selection
  /// head plus the method's selection rule. Base: per-token sigmoid
  /// threshold gated on validity.
  virtual Tensor EvalMaskFromStatesConst(const data::Batch& batch,
                                         const Tensor& gen_states) const;

  /// Predictor's post-encoder hidden states [B, T, H_p] over the masked
  /// input Z = M ⊙ X. `embedded` as in GenEncoderStatesConst (note the
  /// predictor's own table — see serve/cache.h on table sharing).
  Tensor PredEncoderStatesConst(const data::Batch& batch, const Tensor& mask,
                                const Tensor* embedded = nullptr) const;

  /// Class logits [B, num_classes] from precomputed predictor states
  /// (masked max-pool + classification head).
  Tensor PredictLogitsFromStatesConst(const data::Batch& batch,
                                      const Tensor& pred_states) const;

  /// Number of player modules (Table IV row "modules"): 1 generator +
  /// however many predictors the method uses.
  virtual int64_t NumModules() const { return 2; }

  /// Total scalar parameter count across all modules, excluding the frozen
  /// embedding tables (Table IV row "parameters").
  virtual int64_t TotalParameters() const;

  /// Predictor logits for a fixed mask (evaluation mode). Toggles the
  /// predictor into eval mode and back.
  Tensor PredictLogits(const data::Batch& batch, const Tensor& mask);

  /// Non-mutating PredictLogits: same eval-mode contract and thread
  /// compatibility as EvalMaskConst. Like EvalMaskConst it is the
  /// composition PredictLogitsFromStatesConst(batch,
  /// PredEncoderStatesConst(batch, mask)).
  Tensor PredictLogitsConst(const data::Batch& batch, const Tensor& mask) const;

  /// Modules included in a saved model, in a stable order. Subclasses with
  /// auxiliary players that ship with the deployed model (DAR's frozen
  /// discriminator) extend this. Used by Save/LoadRationalizer, the serving
  /// layer's checkpoint restore, and replica mirroring (MirrorFrom).
  virtual std::vector<nn::NamedModule> CheckpointModules();

  /// Constructs an architecturally identical, freshly initialized model of
  /// the same method (same embeddings, config, and options — Prepare() is
  /// NOT run on the copy). The data-parallel trainer builds per-thread
  /// replicas this way and then MirrorFrom()s the trained master state in.
  /// Default: nullptr — the method does not support data-parallel training.
  virtual std::unique_ptr<RationalizerBase> CloneArchitecture() const;

  /// Copies `other`'s full parameter state into this model: values and
  /// per-parameter requires_grad flags of every checkpoint module (so a
  /// master's pretrained-and-frozen modules stay frozen in the replica).
  /// Architectures must match (e.g. this = other->CloneArchitecture()).
  void MirrorFrom(RationalizerBase& other);

  /// When non-null, RnpCoreLoss perturbs the selection logits with this
  /// [B, T] tensor instead of drawing Gumbel noise from rng(). The
  /// data-parallel trainer draws one noise tensor per minibatch from the
  /// master RNG and injects each replica's row slice, which keeps the
  /// sharded run on exactly the sequential run's noise sequence (and keeps
  /// replicas deterministic regardless of shard→thread assignment). The
  /// pointee must outlive the TrainLoss call; pass nullptr to restore
  /// normal RNG sampling.
  void set_injected_mask_noise(const Tensor* noise) {
    injected_mask_noise_ = noise;
  }

  /// Components of the most recent TrainLoss() on this instance (each
  /// replica of a data-parallel run is its own instance, so no cross-thread
  /// sharing). Invalid until the first TrainLoss call.
  const LossBreakdown& last_loss_breakdown() const { return last_breakdown_; }

  Generator& generator() { return generator_; }
  Predictor& predictor() { return predictor_; }
  const TrainConfig& config() const { return config_; }
  const std::string& name() const { return name_; }
  const Tensor& embeddings() const { return embeddings_; }
  Pcg32& rng() { return rng_; }

 protected:
  /// CE(Y, predictor(Z)) + Omega(M) — the RNP core that most methods build
  /// on (eq. 2 + eq. 3). Returns the sampled mask through `mask_out` and
  /// the predictor's rationale logits through `logits_out` so subclasses
  /// can feed them to auxiliary modules without recomputing.
  ag::Variable RnpCoreLoss(const data::Batch& batch, nn::GumbelMask* mask_out,
                           ag::Variable* logits_out = nullptr);

  /// Parameter count of one module, minus its frozen embedding table.
  static int64_t CountTrainable(const nn::Module& module);

  TrainConfig config_;
  std::string name_;
  Tensor embeddings_;
  Pcg32 rng_;
  Generator generator_;
  Predictor predictor_;
  const Tensor* injected_mask_noise_ = nullptr;
  LossBreakdown last_breakdown_;
};

/// Saves every module of a trained model (CheckpointModules) as one
/// multi-module checkpoint file. Returns false on I/O failure.
bool SaveRationalizer(RationalizerBase& model, const std::string& path);

/// Restores a model saved with SaveRationalizer. The model must have been
/// constructed with the same architecture (method, config, vocabulary).
nn::CheckpointResult LoadRationalizer(RationalizerBase& model,
                                      const std::string& path);

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_RATIONALIZER_H_
