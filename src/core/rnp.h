// RNP — Rationalizing Neural Predictions (Lei et al., 2016).
//
// The vanilla cooperative game (eq. 2): the generator selects a rationale,
// the predictor classifies it, and both minimize the prediction
// cross-entropy plus the short-and-coherent regularizer (eq. 3). This is
// the framework the paper diagnoses with rationale shift.
#ifndef DAR_CORE_RNP_H_
#define DAR_CORE_RNP_H_

#include "core/rationalizer.h"

namespace dar {
namespace core {

/// The vanilla RNP model.
class RnpModel : public RationalizerBase {
 public:
  RnpModel(Tensor embeddings, TrainConfig config);

  ag::Variable TrainLoss(const data::Batch& batch) override;

  std::unique_ptr<RationalizerBase> CloneArchitecture() const override;
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_RNP_H_
