#include "core/rationalizer.h"

#include <unordered_map>
#include <utility>

#include "nn/loss.h"
#include "tensor/check.h"

namespace dar {
namespace core {

RationalizerBase::RationalizerBase(Tensor embeddings, TrainConfig config,
                                   std::string name)
    : config_(config),
      name_(std::move(name)),
      embeddings_(std::move(embeddings)),
      rng_(config.seed, /*stream=*/0xda5),
      generator_(embeddings_, config_, rng_),
      predictor_(embeddings_, config_, rng_) {}

void RationalizerBase::Prepare(const datasets::SyntheticDataset& dataset) {
  (void)dataset;
}

std::vector<ag::Variable> RationalizerBase::TrainableParameters() const {
  std::vector<ag::Variable> params;
  for (const nn::NamedParameter& p : generator_.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  for (const nn::NamedParameter& p : predictor_.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  return params;
}

std::vector<nn::NamedParameter> RationalizerBase::NamedTrainableParameters() {
  std::unordered_map<const ag::Node*, std::string> names;
  for (const nn::NamedModule& m : CheckpointModules()) {
    if (m.module == nullptr) continue;
    for (const nn::NamedParameter& p : m.module->Parameters()) {
      names[p.variable.node().get()] = m.name + "/" + p.name;
    }
  }
  std::vector<nn::NamedParameter> out;
  int64_t index = 0;
  for (const ag::Variable& v : TrainableParameters()) {
    auto it = names.find(v.node().get());
    std::string name = it != names.end()
                           ? it->second
                           : "trainable[" + std::to_string(index) + "]";
    out.push_back({std::move(name), v});
    ++index;
  }
  return out;
}

void RationalizerBase::SetTraining(bool training) {
  generator_.SetTraining(training);
  predictor_.SetTraining(training);
}

Tensor RationalizerBase::EvalMask(const data::Batch& batch) {
  bool was_training = generator_.training();
  SetTraining(false);
  Tensor mask = EvalMaskConst(batch);
  SetTraining(was_training);
  return mask;
}

Tensor RationalizerBase::EvalMaskConst(const data::Batch& batch) const {
  return EvalMaskFromStatesConst(batch, GenEncoderStatesConst(batch));
}

Tensor RationalizerBase::GenEncoderStatesConst(const data::Batch& batch,
                                               const Tensor* embedded) const {
  return generator_.EncodeStates(batch, embedded).value();
}

Tensor RationalizerBase::EvalMaskFromStatesConst(const data::Batch& batch,
                                                 const Tensor& gen_states) const {
  Tensor logits =
      generator_
          .SelectionLogitsFromStates(ag::Variable::Constant(gen_states))
          .value();
  return Generator::ThresholdMask(logits, batch.valid);
}

Tensor RationalizerBase::PredEncoderStatesConst(const data::Batch& batch,
                                                const Tensor& mask,
                                                const Tensor* embedded) const {
  return predictor_.EncodeWithConstMask(batch, mask, embedded).value();
}

Tensor RationalizerBase::PredictLogitsFromStatesConst(
    const data::Batch& batch, const Tensor& pred_states) const {
  return predictor_.LogitsFromStatesConst(pred_states, batch.valid);
}

int64_t RationalizerBase::TotalParameters() const {
  return CountTrainable(generator_) + CountTrainable(predictor_);
}

Tensor RationalizerBase::PredictLogits(const data::Batch& batch,
                                       const Tensor& mask) {
  bool was_training = predictor_.training();
  predictor_.SetTraining(false);
  Tensor logits = PredictLogitsConst(batch, mask);
  predictor_.SetTraining(was_training);
  return logits;
}

Tensor RationalizerBase::PredictLogitsConst(const data::Batch& batch,
                                            const Tensor& mask) const {
  return PredictLogitsFromStatesConst(batch,
                                      PredEncoderStatesConst(batch, mask));
}

std::vector<nn::NamedModule> RationalizerBase::CheckpointModules() {
  return {{"generator", &generator_}, {"predictor", &predictor_}};
}

std::unique_ptr<RationalizerBase> RationalizerBase::CloneArchitecture() const {
  return nullptr;
}

void RationalizerBase::MirrorFrom(RationalizerBase& other) {
  std::vector<nn::NamedModule> mine = CheckpointModules();
  std::vector<nn::NamedModule> theirs = other.CheckpointModules();
  DAR_CHECK_MSG(mine.size() == theirs.size(),
                "MirrorFrom: module count mismatch (different architectures?)");
  for (size_t i = 0; i < mine.size(); ++i) {
    mine[i].module->CopyStateFrom(*theirs[i].module);
  }
}

ag::Variable RationalizerBase::RnpCoreLoss(const data::Batch& batch,
                                           nn::GumbelMask* mask_out,
                                           ag::Variable* logits_out) {
  nn::GumbelMask mask =
      injected_mask_noise_ != nullptr
          ? generator_.SampleMaskWithNoise(batch, *injected_mask_noise_)
          : generator_.SampleMask(batch, rng_);
  ag::Variable logits = predictor_.Forward(batch, mask.hard);
  ag::Variable ce = nn::CrossEntropy(logits, batch.labels);
  ag::Variable omega = SparsityCoherencePenalty(mask, batch.valid, config_);
  if (mask_out != nullptr) *mask_out = mask;
  if (logits_out != nullptr) *logits_out = logits;

  // Telemetry: loss components and realized sparsity of the sampled mask
  // (selected / valid; hard already zeroes padded positions).
  last_breakdown_ = LossBreakdown{};
  last_breakdown_.task_ce = ce.value().item();
  last_breakdown_.omega = omega.value().item();
  const Tensor& hard = mask.hard.value();
  double selected = 0.0, valid_total = 0.0;
  for (int64_t i = 0; i < hard.numel(); ++i) selected += hard.flat(i);
  for (int64_t i = 0; i < batch.valid.numel(); ++i) {
    valid_total += batch.valid.flat(i);
  }
  last_breakdown_.sparsity =
      valid_total > 0.0 ? static_cast<float>(selected / valid_total) : 0.0f;
  last_breakdown_.valid = true;
  return ag::Add(ce, omega);
}

bool SaveRationalizer(RationalizerBase& model, const std::string& path) {
  return nn::SaveCheckpoint(model.CheckpointModules(), path);
}

nn::CheckpointResult LoadRationalizer(RationalizerBase& model,
                                      const std::string& path) {
  return nn::LoadCheckpoint(model.CheckpointModules(), path);
}

int64_t RationalizerBase::CountTrainable(const nn::Module& module) {
  int64_t n = 0;
  for (const nn::NamedParameter& p : module.Parameters()) {
    // The frozen pretrained embedding tables are excluded: Table IV counts
    // player parameters, and all methods share identical embeddings. Frozen
    // *player* parameters (DAR's discriminator) still count — they are part
    // of the deployed model.
    if (p.name.find("embedding/") != std::string::npos) continue;
    n += p.variable.numel();
  }
  return n;
}

}  // namespace core
}  // namespace dar
