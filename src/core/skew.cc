#include "core/skew.h"

#include "core/trainer.h"
#include "data/dataloader.h"
#include "nn/loss.h"
#include "optim/adam.h"
#include "optim/clip.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {

Tensor FirstSentenceMask(const data::Batch& batch, int64_t period_id) {
  int64_t b = batch.batch_size(), t = batch.max_len();
  Tensor mask(Shape{b, t});
  for (int64_t i = 0; i < b; ++i) {
    bool ended = false;
    for (int64_t j = 0; j < t; ++j) {
      if (ended || batch.valid.at(i, j) == 0.0f) break;
      mask.at(i, j) = 1.0f;
      if (batch.tokens[static_cast<size_t>(i)][static_cast<size_t>(j)] ==
          period_id) {
        ended = true;
      }
    }
  }
  return mask;
}

namespace {

/// Context for the first-sentence MaskFn.
struct FirstSentenceCtx {
  int64_t period_id;
};

Tensor FirstSentenceMaskFn(const data::Batch& batch, const void* ctx) {
  const auto* fs = static_cast<const FirstSentenceCtx*>(ctx);
  return FirstSentenceMask(batch, fs->period_id);
}

}  // namespace

float SkewPredictorPretrain(Predictor& predictor,
                            const datasets::SyntheticDataset& dataset,
                            int64_t epochs, Pcg32& rng, int64_t batch_size,
                            float lr) {
  FirstSentenceCtx ctx{dataset.vocab.IdOrUnk(".")};
  return FitPredictorWithMask(predictor, dataset, epochs, batch_size, lr, rng,
                              &FirstSentenceMaskFn, &ctx);
}

float SkewGeneratorPretrain(Generator& generator,
                            const datasets::SyntheticDataset& dataset,
                            float accuracy_threshold, Pcg32& rng,
                            int64_t max_epochs, int64_t batch_size, float lr) {
  DAR_CHECK(accuracy_threshold > 0.0f && accuracy_threshold <= 1.0f);
  std::vector<ag::Variable> params;
  for (const nn::NamedParameter& p : generator.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  optim::Adam adam(params, {.lr = lr});
  data::DataLoader loader(dataset.train, batch_size, /*shuffle=*/true);

  float accuracy = 0.0f;
  generator.SetTraining(true);
  for (int64_t epoch = 0; epoch < max_epochs && accuracy < accuracy_threshold;
       ++epoch) {
    int64_t correct = 0, total = 0;
    for (const data::Batch& batch : loader.Epoch(rng)) {
      adam.ZeroGrad();
      ag::Variable logits = generator.SelectionLogits(batch);
      ag::Variable p0 = ag::Sigmoid(ag::PickColumns(
          logits, std::vector<int64_t>(static_cast<size_t>(batch.batch_size()),
                                       0)));
      // BCE against the class label as the token-0 selection target.
      Tensor y(Shape{batch.batch_size()});
      for (int64_t i = 0; i < batch.batch_size(); ++i) {
        y.at(i) = static_cast<float>(batch.labels[static_cast<size_t>(i)]);
      }
      ag::Variable yv = ag::Variable::Constant(y);
      ag::Variable one_minus_y = ag::Variable::Constant(
          Map(y, [](float v) { return 1.0f - v; }));
      ag::Variable bce = ag::Neg(ag::Mean(ag::Add(
          ag::Mul(yv, ag::Log(p0)),
          ag::Mul(one_minus_y, ag::Log(ag::AddScalar(ag::Neg(p0), 1.0f))))));
      bce.Backward();
      optim::ClipGradNorm(params, 5.0f);
      adam.Step();

      for (int64_t i = 0; i < batch.batch_size(); ++i) {
        bool selected = p0.value().at(i) > 0.5f;
        if (selected == (batch.labels[static_cast<size_t>(i)] == 1)) ++correct;
      }
      total += batch.batch_size();
    }
    accuracy = total > 0
                   ? static_cast<float>(correct) / static_cast<float>(total)
                   : 0.0f;
  }
  return accuracy;
}

}  // namespace core
}  // namespace dar
