// The rationale generator f_G.
#ifndef DAR_CORE_GENERATOR_H_
#define DAR_CORE_GENERATOR_H_

#include <memory>

#include "core/encoder.h"
#include "core/train_config.h"
#include "data/batch.h"
#include "nn/embedding.h"
#include "nn/gumbel.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace dar {
namespace core {

/// Generator: embeds the input, encodes it contextually, and emits one
/// selection logit per token; rationale masks are sampled from those logits
/// with binary Gumbel-softmax + straight-through (eq. 1's M).
class Generator : public nn::Module {
 public:
  /// `pretrained_embeddings` is the [vocab, E] table (SyntheticGlove);
  /// it is kept frozen, matching the paper's fixed GloVe vectors.
  Generator(Tensor pretrained_embeddings, const TrainConfig& config,
            Pcg32& rng);

  /// Per-token selection logits [B, T].
  ag::Variable SelectionLogits(const data::Batch& batch) const;

  /// Post-encoder hidden states [B, T, output_dim] of the selection
  /// encoder — the first half of SelectionLogits. When `embedded` is
  /// non-null it is used as the [B, T, E] embedded input instead of an
  /// embedding-table lookup; its values must equal the table rows for
  /// batch.tokens (the serving cache assembles it from cached rows).
  ag::Variable EncodeStates(const data::Batch& batch,
                            const Tensor* embedded = nullptr) const;

  /// The selection head over precomputed encoder states [B, T, H] — the
  /// second half of SelectionLogits. SelectionLogits(batch) ==
  /// SelectionLogitsFromStates(EncodeStates(batch)) bit-for-bit, which is
  /// what lets the serving cache store states and re-run only this stage.
  ag::Variable SelectionLogitsFromStates(const ag::Variable& states) const;

  /// Samples a rationale mask for a training batch (stochastic) or derives
  /// the deterministic mask in eval mode.
  nn::GumbelMask SampleMask(const data::Batch& batch, Pcg32& rng) const;

  /// SampleMask with caller-supplied Gumbel noise [B, T] instead of RNG
  /// draws. The data-parallel trainer uses this to feed each shard replica
  /// its slice of the master-drawn batch noise (see nn::DrawBinaryMaskNoise).
  nn::GumbelMask SampleMaskWithNoise(const data::Batch& batch,
                                     const Tensor& noise) const;

  /// Deterministic hard mask values (eval mode), [B, T].
  Tensor DeterministicMask(const data::Batch& batch) const;

  /// DeterministicMask's thresholding applied to precomputed selection
  /// logits: sigmoid(l / tau) > 0.5 <=> l > 0, gated by validity.
  static Tensor ThresholdMask(const Tensor& logits, const Tensor& valid);

  const nn::Embedding& embedding() const { return embedding_; }

  /// The contextual encoder (mutable: pretraining warm-starts copy into it).
  SequenceEncoder& encoder() { return *encoder_; }

 private:
  TrainConfig config_;
  nn::Embedding embedding_;
  std::unique_ptr<SequenceEncoder> encoder_;
  nn::Linear head_;  // output_dim -> 1 selection score
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_GENERATOR_H_
