#include "core/rnp.h"

#include <utility>

namespace dar {
namespace core {

RnpModel::RnpModel(Tensor embeddings, TrainConfig config)
    : RationalizerBase(std::move(embeddings), config, "RNP") {}

ag::Variable RnpModel::TrainLoss(const data::Batch& batch) {
  return RnpCoreLoss(batch, /*mask_out=*/nullptr);
}

std::unique_ptr<RationalizerBase> RnpModel::CloneArchitecture() const {
  return std::make_unique<RnpModel>(embeddings(), config());
}

}  // namespace core
}  // namespace dar
