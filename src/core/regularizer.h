// Short-and-coherent rationale regularizer Ω(M) (eq. 3).
#ifndef DAR_CORE_REGULARIZER_H_
#define DAR_CORE_REGULARIZER_H_

#include "autograd/ops.h"
#include "core/train_config.h"
#include "nn/gumbel.h"

namespace dar {
namespace core {

/// Computes eq. 3 over a batch:
///
///   Omega(M) = lambda_1 * | mean_valid(M) - alpha |
///            + lambda_2 * mean_valid(|m_t - m_{t-1}|)
///
/// evaluated on the *soft* selection probabilities (the standard relaxation
/// — hard masks have zero gradient). `valid` masks padding out of both
/// terms; means are over valid positions across the whole batch.
ag::Variable SparsityCoherencePenalty(const nn::GumbelMask& mask,
                                      const Tensor& valid,
                                      const TrainConfig& config);

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_REGULARIZER_H_
