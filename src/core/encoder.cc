#include "core/encoder.h"

#include "tensor/check.h"

namespace dar {
namespace core {

GruEncoder::GruEncoder(int64_t input_dim, int64_t hidden_dim, Pcg32& rng)
    : gru_(input_dim, hidden_dim, rng) {
  RegisterChild("gru", &gru_);
}

ag::Variable GruEncoder::Encode(const ag::Variable& x,
                                const Tensor& valid) const {
  return gru_.Forward(x, &valid);
}

TransformerSeqEncoder::TransformerSeqEncoder(
    int64_t input_dim, const nn::TransformerConfig& config, Pcg32& rng)
    : input_dim_(input_dim),
      input_proj_(input_dim, config.dim, rng),
      transformer_(config, rng) {
  RegisterChild("proj", &input_proj_);
  RegisterChild("transformer", &transformer_);
}

ag::Variable TransformerSeqEncoder::Encode(const ag::Variable& x,
                                           const Tensor& valid) const {
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.size(2), input_dim_);
  int64_t b = xv.size(0), t = xv.size(1);
  ag::Variable flat = ag::Reshape(x, Shape{b * t, input_dim_});
  ag::Variable projected = input_proj_.Forward(flat);
  ag::Variable reshaped =
      ag::Reshape(projected, Shape{b, t, transformer_.config().dim});
  return transformer_.Forward(reshaped, valid);
}

std::unique_ptr<SequenceEncoder> MakeEncoder(const TrainConfig& config,
                                             Pcg32& rng) {
  if (config.encoder == EncoderKind::kTransformer) {
    return std::make_unique<TransformerSeqEncoder>(config.embedding_dim,
                                                   config.transformer, rng);
  }
  return std::make_unique<GruEncoder>(config.embedding_dim, config.hidden_dim,
                                      rng);
}

}  // namespace core
}  // namespace dar
