// Training loops: the rationalization game and full-text pretraining.
#ifndef DAR_CORE_TRAINER_H_
#define DAR_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "core/predictor.h"
#include "core/rationalizer.h"
#include "datasets/synthetic_review.h"

namespace dar {
namespace core {

/// Per-epoch training statistics.
struct EpochStats {
  float train_loss = 0.0f;
  /// Dev-set accuracy of the predictor on the selected rationale — the
  /// paper's early-stopping criterion.
  float dev_acc = 0.0f;
};

/// Result of Fit().
struct TrainRun {
  std::vector<EpochStats> epochs;
  int64_t best_epoch = -1;
  float best_dev_acc = 0.0f;
};

/// Trains a rationalization model: Prepare() (method-specific pretraining),
/// then `config.epochs` epochs of Adam on TrainLoss with gradient clipping,
/// early "stopping" by snapshot — the parameters from the best-dev-accuracy
/// epoch are restored at the end (the paper's protocol, Appendix B).
TrainRun Fit(RationalizerBase& model, const datasets::SyntheticDataset& dataset,
             bool verbose = false);

/// Pretrains `predictor` to classify with a fixed mask policy. Used for
/// DAR's predictor^t (full-text mask), the skewed-predictor setting
/// (first-sentence mask), and the Table VI transformer warm-up.
///
/// `mask_fn` maps a batch to the constant input mask; pass nullptr for the
/// full-text (validity) mask. Returns the final dev accuracy under the same
/// mask policy.
using MaskFn = Tensor (*)(const data::Batch&, const void* ctx);
float FitPredictorWithMask(Predictor& predictor,
                           const datasets::SyntheticDataset& dataset,
                           int64_t epochs, int64_t batch_size, float lr,
                           Pcg32& rng, MaskFn mask_fn = nullptr,
                           const void* mask_ctx = nullptr);

/// Convenience wrapper: full-text pretraining (eq. 4).
float FitFullTextPredictor(Predictor& predictor,
                           const datasets::SyntheticDataset& dataset,
                           int64_t epochs, int64_t batch_size, float lr,
                           Pcg32& rng);

/// Dev/test accuracy of `model`'s predictor with deterministic rationales.
float EvaluateRationaleAccuracy(RationalizerBase& model,
                                const std::vector<data::Example>& examples,
                                int64_t batch_size);

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_TRAINER_H_
