// Training loops: the rationalization game and full-text pretraining.
#ifndef DAR_CORE_TRAINER_H_
#define DAR_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "core/predictor.h"
#include "core/rationalizer.h"
#include "datasets/synthetic_review.h"
#include "obs/train_observer.h"

namespace dar {
namespace core {

/// Per-epoch training statistics.
struct EpochStats {
  float train_loss = 0.0f;
  /// Dev-set accuracy of the predictor on the selected rationale — the
  /// paper's early-stopping criterion.
  float dev_acc = 0.0f;
};

/// Result of Fit().
struct TrainRun {
  std::vector<EpochStats> epochs;
  int64_t best_epoch = -1;
  float best_dev_acc = 0.0f;
};

/// Trains a rationalization model: Prepare() (method-specific pretraining),
/// then `config.epochs` epochs of Adam on TrainLoss with gradient clipping,
/// early "stopping" by snapshot — the parameters from the best-dev-accuracy
/// epoch are restored at the end (the paper's protocol, Appendix B).
///
/// `observer` (optional) receives per-step and per-epoch telemetry: loss
/// components, gradient norms, rationale sparsity, and — when the observer
/// asks for it — the rationale-shift gauge measured against a frozen
/// full-text probe (core/telemetry.h). Telemetry is passive: attaching an
/// observer never changes the training trajectory. `verbose` attaches the
/// classic one-line-per-epoch console log (an obs::ConsoleTrainLogger).
TrainRun Fit(RationalizerBase& model, const datasets::SyntheticDataset& dataset,
             bool verbose = false, obs::TrainObserver* observer = nullptr);

/// How a minibatch's rows are assigned to shards.
enum class ShardPolicy {
  /// Shard i takes a contiguous row range (sizes differing by at most one).
  kContiguous,
  /// Shard i takes rows i, i + num_shards, i + 2*num_shards, ...
  kStrided,
};

/// Configuration of the data-parallel training path.
///
/// Each minibatch is split into `num_shards` row shards; shard s runs
/// forward/backward on an architecture replica of the model, with its
/// backward seeded by shard_size/batch_size so that the reduced gradient is
/// the gradient of the per-example-mean batch loss. The reduced gradients
/// are accumulated into the master parameters and one Optimizer::Step()
/// is taken, after which the master values are broadcast back to every
/// replica. The shard count — not the worker count — defines the
/// floating-point summation tree, so results depend only on
/// (num_shards, shard_policy), never on how many threads happened to run.
struct ParallelTrainConfig {
  /// Worker threads executing shard tasks (>= 1).
  int num_workers = 1;
  /// Shards per minibatch; 0 means num_workers. Capped at the batch size.
  int64_t num_shards = 0;
  ShardPolicy shard_policy = ShardPolicy::kContiguous;
  /// When true (default), shard gradients are reduced in fixed shard order
  /// after a barrier, making training bit-identical across runs and across
  /// any num_workers. When false, shards accumulate in completion order
  /// (lower latency, run-to-run float jitter).
  bool deterministic_reduce = true;
};

/// Data-parallel Fit(): same protocol as Fit() above (Prepare, Adam,
/// clipping, best-epoch snapshot) with the inner per-batch gradient
/// computed by the shard → replica → reduce → step scheme described on
/// ParallelTrainConfig. The model must support CloneArchitecture() (RNP and
/// DAR do). Gumbel noise is drawn per batch from the master RNG in the
/// sequential order, so with num_shards = 1 this path reproduces the
/// sequential Fit() bit-exactly; with more shards it computes the same
/// per-example-mean gradient up to float summation order. `observer` is
/// the same passive telemetry hook as on the sequential Fit().
TrainRun Fit(RationalizerBase& model, const datasets::SyntheticDataset& dataset,
             const ParallelTrainConfig& parallel, bool verbose = false,
             obs::TrainObserver* observer = nullptr);

/// Pretrains `predictor` to classify with a fixed mask policy. Used for
/// DAR's predictor^t (full-text mask), the skewed-predictor setting
/// (first-sentence mask), and the Table VI transformer warm-up.
///
/// `mask_fn` maps a batch to the constant input mask; pass nullptr for the
/// full-text (validity) mask. Returns the final dev accuracy under the same
/// mask policy.
using MaskFn = Tensor (*)(const data::Batch&, const void* ctx);
float FitPredictorWithMask(Predictor& predictor,
                           const datasets::SyntheticDataset& dataset,
                           int64_t epochs, int64_t batch_size, float lr,
                           Pcg32& rng, MaskFn mask_fn = nullptr,
                           const void* mask_ctx = nullptr);

/// Convenience wrapper: full-text pretraining (eq. 4).
float FitFullTextPredictor(Predictor& predictor,
                           const datasets::SyntheticDataset& dataset,
                           int64_t epochs, int64_t batch_size, float lr,
                           Pcg32& rng);

/// Data-parallel FitPredictorWithMask: the same shard → replica → reduce →
/// step scheme applied to fixed-mask predictor training. `embeddings` and
/// `config` must be the table/config the predictor was constructed with
/// (they are needed to build replicas). `mask_fn` is evaluated per shard
/// sub-batch, which is equivalent to slicing the full-batch mask for any
/// row-wise mask policy (all built-in policies are row-wise). Returns the
/// final dev accuracy, computed sequentially on the master.
float FitPredictorWithMaskParallel(Predictor& predictor,
                                   const Tensor& embeddings,
                                   const TrainConfig& config,
                                   const datasets::SyntheticDataset& dataset,
                                   int64_t epochs, int64_t batch_size, float lr,
                                   Pcg32& rng,
                                   const ParallelTrainConfig& parallel,
                                   MaskFn mask_fn = nullptr,
                                   const void* mask_ctx = nullptr);

/// Convenience wrapper: data-parallel full-text pretraining (eq. 4).
float FitFullTextPredictorParallel(Predictor& predictor,
                                   const Tensor& embeddings,
                                   const TrainConfig& config,
                                   const datasets::SyntheticDataset& dataset,
                                   int64_t epochs, int64_t batch_size, float lr,
                                   Pcg32& rng,
                                   const ParallelTrainConfig& parallel);

/// Dev/test accuracy of `model`'s predictor with deterministic rationales.
float EvaluateRationaleAccuracy(RationalizerBase& model,
                                const std::vector<data::Example>& examples,
                                int64_t batch_size);

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_TRAINER_H_
