#include "core/mlm.h"

#include <utility>

#include "autograd/ops.h"
#include "data/dataloader.h"
#include "optim/adam.h"
#include "optim/clip.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {

MlmPretrainer::MlmPretrainer(Tensor embeddings, const TrainConfig& config,
                             int64_t mask_id, Pcg32& rng)
    : config_(config),
      mask_id_(mask_id),
      embedding_(std::move(embeddings), /*trainable=*/false),
      encoder_(MakeEncoder(config, rng)),
      mlm_head_(encoder_->output_dim(), embedding_.vocab_size(), rng) {
  DAR_CHECK_MSG(config.encoder == EncoderKind::kTransformer,
                "MLM pretraining targets the Transformer encoder setting");
  RegisterChild("embedding", &embedding_);
  RegisterChild("encoder", encoder_.get());
  RegisterChild("mlm_head", &mlm_head_);
}

float MlmPretrainer::Train(const datasets::SyntheticDataset& dataset,
                           const MlmConfig& mlm_config, Pcg32& rng) {
  std::vector<ag::Variable> params;
  for (const nn::NamedParameter& p : Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  optim::Adam adam(params, {.lr = mlm_config.lr});
  data::DataLoader loader(dataset.train, mlm_config.batch_size,
                          /*shuffle=*/true);
  int64_t vocab = embedding_.vocab_size();

  double last_epoch_correct = 0.0, last_epoch_masked = 0.0;
  for (int64_t epoch = 0; epoch < mlm_config.epochs; ++epoch) {
    SetTraining(true);
    last_epoch_correct = 0.0;
    last_epoch_masked = 0.0;
    for (const data::Batch& batch : loader.Epoch(rng)) {
      int64_t b = batch.batch_size(), t = batch.max_len();

      // Corrupt the inputs BERT-style and remember the targets.
      std::vector<std::vector<int64_t>> corrupted = batch.tokens;
      std::vector<int64_t> targets(static_cast<size_t>(b * t), 0);
      Tensor weights(Shape{b * t});
      float num_masked = 0.0f;
      for (int64_t i = 0; i < b; ++i) {
        for (int64_t j = 0; j < t; ++j) {
          if (batch.valid.at(i, j) == 0.0f) continue;
          if (!rng.Bernoulli(mlm_config.mask_prob)) continue;
          int64_t original =
              batch.tokens[static_cast<size_t>(i)][static_cast<size_t>(j)];
          float roll = rng.NextFloat();
          int64_t replacement = mask_id_;
          if (roll > 0.9f) {
            replacement = original;  // keep
          } else if (roll > 0.8f) {
            replacement = 2 + static_cast<int64_t>(rng.Below(
                                  static_cast<uint32_t>(vocab - 2)));
          }
          corrupted[static_cast<size_t>(i)][static_cast<size_t>(j)] =
              replacement;
          targets[static_cast<size_t>(i * t + j)] = original;
          weights.at(i * t + j) = 1.0f;
          num_masked += 1.0f;
        }
      }
      if (num_masked == 0.0f) continue;

      adam.ZeroGrad();
      ag::Variable embedded = embedding_.Forward(corrupted);
      ag::Variable states = encoder_->Encode(embedded, batch.valid);
      ag::Variable flat =
          ag::Reshape(states, Shape{b * t, encoder_->output_dim()});
      ag::Variable logits = mlm_head_.Forward(flat);  // [B*T, vocab]
      ag::Variable logp = ag::LogSoftmaxRowsOp(logits);
      ag::Variable nll = ag::Neg(ag::PickColumns(logp, targets));
      ag::Variable weighted = ag::Mul(nll, ag::Variable::Constant(weights));
      ag::Variable loss = ag::MulScalar(ag::Sum(weighted), 1.0f / num_masked);
      loss.Backward();
      optim::ClipGradNorm(params, 5.0f);
      adam.Step();

      // Masked-token accuracy bookkeeping (greedy prediction).
      std::vector<int64_t> pred = ArgMaxRows(logits.value());
      for (int64_t r = 0; r < b * t; ++r) {
        if (weights.at(r) == 0.0f) continue;
        last_epoch_masked += 1.0;
        if (pred[static_cast<size_t>(r)] == targets[static_cast<size_t>(r)]) {
          last_epoch_correct += 1.0;
        }
      }
    }
  }
  SetTraining(false);
  return last_epoch_masked > 0.0
             ? static_cast<float>(last_epoch_correct / last_epoch_masked)
             : 0.0f;
}

void MlmPretrainer::InitializeEncoder(SequenceEncoder& target) const {
  target.CopyParametersFrom(*encoder_);
}

}  // namespace core
}  // namespace dar
