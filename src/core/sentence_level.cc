#include "core/sentence_level.h"

#include <cmath>
#include <memory>
#include <utility>

#include "nn/loss.h"
#include "tensor/check.h"

namespace dar {
namespace core {

std::vector<std::vector<SentenceSpan>> SegmentSentences(
    const data::Batch& batch, int64_t period_id) {
  std::vector<std::vector<SentenceSpan>> result(
      static_cast<size_t>(batch.batch_size()));
  for (int64_t i = 0; i < batch.batch_size(); ++i) {
    std::vector<SentenceSpan>& spans = result[static_cast<size_t>(i)];
    int64_t begin = 0;
    for (int64_t t = 0; t < batch.max_len(); ++t) {
      if (batch.valid.at(i, t) == 0.0f) break;
      bool is_period =
          batch.tokens[static_cast<size_t>(i)][static_cast<size_t>(t)] ==
          period_id;
      bool is_last = t + 1 >= batch.max_len() ||
                     batch.valid.at(i, t + 1) == 0.0f;
      if (is_period || is_last) {
        spans.push_back({begin, t + 1});
        begin = t + 1;
      }
    }
    DAR_CHECK_MSG(!spans.empty(), "example with no valid tokens");
  }
  return result;
}

namespace {

/// Differentiable map: token logits [B, T] -> soft token mask [B, T] where
/// every token of sentence s carries that sentence's (noise-perturbed)
/// softmax probability. See header for the sampling semantics.
ag::Variable SoftSentenceMask(
    const ag::Variable& token_logits,
    const std::vector<std::vector<SentenceSpan>>& sentences, float tau,
    bool training, Pcg32& rng) {
  const Tensor& logits = token_logits.value();
  int64_t b = logits.size(0), t_len = logits.size(1);
  DAR_CHECK_EQ(static_cast<int64_t>(sentences.size()), b);

  // Forward: per-example sentence scores -> softmax -> scatter to tokens.
  Tensor soft(Shape{b, t_len});
  auto probs = std::make_shared<std::vector<std::vector<float>>>(
      static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    const std::vector<SentenceSpan>& spans = sentences[static_cast<size_t>(i)];
    std::vector<float> scores(spans.size());
    for (size_t s = 0; s < spans.size(); ++s) {
      float sum = 0.0f;
      for (int64_t t = spans[s].begin; t < spans[s].end; ++t) {
        sum += logits.at(i, t);
      }
      scores[s] = sum / static_cast<float>(spans[s].end - spans[s].begin);
      scores[s] /= tau;
      if (training) scores[s] += rng.Gumbel();
    }
    float mx = scores[0];
    for (float v : scores) mx = std::max(mx, v);
    float denom = 0.0f;
    std::vector<float>& p = (*probs)[static_cast<size_t>(i)];
    p.resize(spans.size());
    for (size_t s = 0; s < spans.size(); ++s) {
      p[s] = std::exp(scores[s] - mx);
      denom += p[s];
    }
    for (size_t s = 0; s < spans.size(); ++s) {
      p[s] /= denom;
      for (int64_t t = spans[s].begin; t < spans[s].end; ++t) {
        soft.at(i, t) = p[s];
      }
    }
  }

  auto pn = token_logits.node();
  auto spans_copy =
      std::make_shared<std::vector<std::vector<SentenceSpan>>>(sentences);
  float inv_tau = 1.0f / tau;
  return ag::MakeOpResult(
      "sentence_softmax", std::move(soft), {pn},
      [pn, spans_copy, probs, b, inv_tau](ag::Node& n) {
        Tensor g(pn->value.shape());
        for (int64_t i = 0; i < b; ++i) {
          const std::vector<SentenceSpan>& spans =
              (*spans_copy)[static_cast<size_t>(i)];
          const std::vector<float>& p = (*probs)[static_cast<size_t>(i)];
          // dL/dp_s = sum of incoming gradient over the sentence's tokens.
          std::vector<float> dp(spans.size());
          for (size_t s = 0; s < spans.size(); ++s) {
            float acc = 0.0f;
            for (int64_t t = spans[s].begin; t < spans[s].end; ++t) {
              acc += n.grad.at(i, t);
            }
            dp[s] = acc;
          }
          // Softmax Jacobian: dL/dscore_s = p_s * (dp_s - sum_k dp_k p_k).
          float dot = 0.0f;
          for (size_t s = 0; s < spans.size(); ++s) dot += dp[s] * p[s];
          for (size_t s = 0; s < spans.size(); ++s) {
            float dscore = p[s] * (dp[s] - dot) * inv_tau;
            // score_s = mean of token logits: spread equally.
            float per_token =
                dscore / static_cast<float>(spans[s].end - spans[s].begin);
            for (int64_t t = spans[s].begin; t < spans[s].end; ++t) {
              g.at(i, t) += per_token;
            }
          }
        }
        pn->AccumulateGrad(g);
      });
}

}  // namespace

nn::GumbelMask SampleOneSentenceMask(
    const ag::Variable& token_logits,
    const std::vector<std::vector<SentenceSpan>>& sentences,
    const Tensor& valid, float tau, bool training, Pcg32& rng) {
  ag::Variable soft = SoftSentenceMask(token_logits, sentences, tau, training,
                                       rng);
  // Hard one-sentence mask: tokens of each example's max-probability
  // sentence (ties broken toward the earlier sentence).
  int64_t b = soft.value().size(0), t_len = soft.value().size(1);
  Tensor hard(Shape{b, t_len});
  for (int64_t i = 0; i < b; ++i) {
    const std::vector<SentenceSpan>& spans = sentences[static_cast<size_t>(i)];
    size_t best = 0;
    for (size_t s = 1; s < spans.size(); ++s) {
      if (soft.value().at(i, spans[s].begin) >
          soft.value().at(i, spans[best].begin)) {
        best = s;
      }
    }
    for (int64_t t = spans[best].begin; t < spans[best].end; ++t) {
      hard.at(i, t) = valid.at(i, t);
    }
  }
  // Straight-through: forward = hard, backward = d(soft).
  ag::Variable st = ag::Add(ag::Sub(soft, soft.Detach()),
                            ag::Variable::Constant(hard));
  return {soft, st};
}

SentenceRnpModel::SentenceRnpModel(Tensor embeddings, TrainConfig config,
                                   int64_t period_id)
    : RationalizerBase(std::move(embeddings), config, "RNP*"),
      period_id_(period_id) {}

ag::Variable SentenceRnpModel::SentenceCoreLoss(const data::Batch& batch,
                                                nn::GumbelMask* mask_out,
                                                ag::Variable* logits_out) {
  std::vector<std::vector<SentenceSpan>> sentences =
      SegmentSentences(batch, period_id_);
  ag::Variable token_logits = generator_.SelectionLogits(batch);
  nn::GumbelMask mask =
      SampleOneSentenceMask(token_logits, sentences, batch.valid, config_.tau,
                            generator_.training(), rng_);
  ag::Variable logits = predictor_.Forward(batch, mask.hard);
  ag::Variable ce = nn::CrossEntropy(logits, batch.labels);
  if (mask_out != nullptr) *mask_out = mask;
  if (logits_out != nullptr) *logits_out = logits;
  return ce;
}

ag::Variable SentenceRnpModel::TrainLoss(const data::Batch& batch) {
  return SentenceCoreLoss(batch, nullptr, nullptr);
}

Tensor SentenceRnpModel::EvalMaskFromStatesConst(
    const data::Batch& batch, const Tensor& gen_states) const {
  std::vector<std::vector<SentenceSpan>> sentences =
      SegmentSentences(batch, period_id_);
  ag::Variable token_logits =
      generator_.SelectionLogitsFromStates(ag::Variable::Constant(gen_states));
  // The eval path (training=false) never draws from the rng, so a throwaway
  // generator keeps this const and thread-compatible.
  Pcg32 unused_rng(0);
  nn::GumbelMask mask =
      SampleOneSentenceMask(token_logits, sentences, batch.valid, config_.tau,
                            /*training=*/false, unused_rng);
  return mask.hard.value();
}

SentenceA2rModel::SentenceA2rModel(Tensor embeddings, TrainConfig config,
                                   int64_t period_id)
    : SentenceRnpModel(std::move(embeddings), config, period_id),
      soft_predictor_(embeddings_, config_, rng_) {
  name_ = "A2R*";
}

ag::Variable SentenceA2rModel::TrainLoss(const data::Batch& batch) {
  nn::GumbelMask mask;
  ag::Variable hard_logits;
  ag::Variable core = SentenceCoreLoss(batch, &mask, &hard_logits);
  ag::Variable soft_logits = soft_predictor_.Forward(batch, mask.soft);
  ag::Variable soft_ce = nn::CrossEntropy(soft_logits, batch.labels);
  ag::Variable js = nn::JsDivergence(hard_logits, soft_logits);
  return ag::Add(ag::Add(core, soft_ce),
                 ag::MulScalar(js, config_.aux_weight));
}

std::vector<ag::Variable> SentenceA2rModel::TrainableParameters() const {
  std::vector<ag::Variable> params = RationalizerBase::TrainableParameters();
  for (const nn::NamedParameter& p : soft_predictor_.Parameters()) {
    if (p.variable.requires_grad()) params.push_back(p.variable);
  }
  return params;
}

void SentenceA2rModel::SetTraining(bool training) {
  RationalizerBase::SetTraining(training);
  soft_predictor_.SetTraining(training);
}

int64_t SentenceA2rModel::TotalParameters() const {
  return RationalizerBase::TotalParameters() + CountTrainable(soft_predictor_);
}

}  // namespace core
}  // namespace dar
