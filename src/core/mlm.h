// Masked-token (BERT-style) pretraining for Transformer encoders.
//
// Table VI of the paper uses BERT-base as the players' encoder. Our
// substitute pretrains a TransformerSeqEncoder on the synthetic corpus
// with the masked-language-model objective (mask 15% of tokens: 80%
// <mask>, 10% random, 10% unchanged; predict the original ids), then
// copies the pretrained weights into each player's encoder. This creates
// the "over-parameterized pretrained encoder" regime in which RNP-family
// methods suffer catastrophic rationale shift and DAR does not.
#ifndef DAR_CORE_MLM_H_
#define DAR_CORE_MLM_H_

#include <memory>

#include "core/encoder.h"
#include "core/train_config.h"
#include "datasets/synthetic_review.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace dar {
namespace core {

/// Masked-language-model pretraining options.
struct MlmConfig {
  float mask_prob = 0.15f;
  int64_t epochs = 3;
  int64_t batch_size = 32;
  float lr = 1e-3f;
};

/// Owns a Transformer encoder plus an MLM head; Train() pretrains them on
/// a dataset's train split and InitializeEncoder() warm-starts a player's
/// encoder from the result.
class MlmPretrainer : public nn::Module {
 public:
  /// `config.encoder` must be kTransformer; `embeddings` is the shared
  /// frozen table; `mask_id` is the vocabulary id of "<mask>".
  MlmPretrainer(Tensor embeddings, const TrainConfig& config, int64_t mask_id,
                Pcg32& rng);

  /// Runs MLM pretraining over the train split; returns the final-epoch
  /// masked-token prediction accuracy.
  float Train(const datasets::SyntheticDataset& dataset,
              const MlmConfig& mlm_config, Pcg32& rng);

  /// Copies the pretrained encoder weights into `target` (must be a
  /// TransformerSeqEncoder with the same configuration).
  void InitializeEncoder(SequenceEncoder& target) const;

 private:
  TrainConfig config_;
  int64_t mask_id_;
  nn::Embedding embedding_;
  std::unique_ptr<SequenceEncoder> encoder_;
  nn::Linear mlm_head_;  // encoder dim -> vocab
};

}  // namespace core
}  // namespace dar

#endif  // DAR_CORE_MLM_H_
