#include "core/generator.h"

#include <utility>

#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {

Generator::Generator(Tensor pretrained_embeddings, const TrainConfig& config,
                     Pcg32& rng)
    : config_(config),
      embedding_(std::move(pretrained_embeddings), /*trainable=*/false),
      encoder_(MakeEncoder(config, rng)),
      head_(encoder_->output_dim(), 1, rng) {
  RegisterChild("embedding", &embedding_);
  RegisterChild("encoder", encoder_.get());
  RegisterChild("head", &head_);
}

ag::Variable Generator::EncodeStates(const data::Batch& batch,
                                     const Tensor* embedded) const {
  ag::Variable x = embedded != nullptr ? ag::Variable::Constant(*embedded)
                                       : embedding_.Forward(batch.tokens);
  return encoder_->Encode(x, batch.valid);
}

ag::Variable Generator::SelectionLogitsFromStates(
    const ag::Variable& states) const {
  const Tensor& sv = states.value();
  int64_t b = sv.size(0), t = sv.size(1);
  ag::Variable flat =
      ag::Reshape(states, Shape{b * t, encoder_->output_dim()});
  ag::Variable logits = head_.Forward(flat);  // [B*T, 1]
  return ag::Reshape(logits, Shape{b, t});
}

ag::Variable Generator::SelectionLogits(const data::Batch& batch) const {
  return SelectionLogitsFromStates(EncodeStates(batch));
}

nn::GumbelMask Generator::SampleMask(const data::Batch& batch,
                                     Pcg32& rng) const {
  ag::Variable logits = SelectionLogits(batch);
  return nn::SampleBinaryMask(logits, batch.valid, config_.tau, training(),
                              rng);
}

nn::GumbelMask Generator::SampleMaskWithNoise(const data::Batch& batch,
                                              const Tensor& noise) const {
  ag::Variable logits = SelectionLogits(batch);
  return nn::SampleBinaryMaskWithNoise(logits, batch.valid, config_.tau,
                                       training(), noise);
}

Tensor Generator::ThresholdMask(const Tensor& logits, const Tensor& valid) {
  // sigmoid(l / tau) > 0.5  <=>  l > 0; gated by validity.
  Tensor mask(logits.shape());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.flat(i) = (logits.flat(i) > 0.0f && valid.flat(i) > 0.0f) ? 1.0f : 0.0f;
  }
  return mask;
}

Tensor Generator::DeterministicMask(const data::Batch& batch) const {
  return ThresholdMask(SelectionLogits(batch).value(), batch.valid);
}

}  // namespace core
}  // namespace dar
