#include "core/generator.h"

#include <utility>

#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace core {

Generator::Generator(Tensor pretrained_embeddings, const TrainConfig& config,
                     Pcg32& rng)
    : config_(config),
      embedding_(std::move(pretrained_embeddings), /*trainable=*/false),
      encoder_(MakeEncoder(config, rng)),
      head_(encoder_->output_dim(), 1, rng) {
  RegisterChild("embedding", &embedding_);
  RegisterChild("encoder", encoder_.get());
  RegisterChild("head", &head_);
}

ag::Variable Generator::SelectionLogits(const data::Batch& batch) const {
  ag::Variable embedded = embedding_.Forward(batch.tokens);
  ag::Variable states = encoder_->Encode(embedded, batch.valid);
  int64_t b = batch.batch_size(), t = batch.max_len();
  ag::Variable flat =
      ag::Reshape(states, Shape{b * t, encoder_->output_dim()});
  ag::Variable logits = head_.Forward(flat);  // [B*T, 1]
  return ag::Reshape(logits, Shape{b, t});
}

nn::GumbelMask Generator::SampleMask(const data::Batch& batch,
                                     Pcg32& rng) const {
  ag::Variable logits = SelectionLogits(batch);
  return nn::SampleBinaryMask(logits, batch.valid, config_.tau, training(),
                              rng);
}

nn::GumbelMask Generator::SampleMaskWithNoise(const data::Batch& batch,
                                              const Tensor& noise) const {
  ag::Variable logits = SelectionLogits(batch);
  return nn::SampleBinaryMaskWithNoise(logits, batch.valid, config_.tau,
                                       training(), noise);
}

Tensor Generator::DeterministicMask(const data::Batch& batch) const {
  ag::Variable logits = SelectionLogits(batch);
  // sigmoid(l / tau) > 0.5  <=>  l > 0; gated by validity.
  Tensor mask(logits.value().shape());
  const Tensor& lv = logits.value();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.flat(i) = (lv.flat(i) > 0.0f && batch.valid.flat(i) > 0.0f) ? 1.0f : 0.0f;
  }
  return mask;
}

}  // namespace core
}  // namespace dar
