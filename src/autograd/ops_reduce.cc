#include <utility>

#include "autograd/ops.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {

Variable Sum(const Variable& a) {
  Tensor out = Tensor::Scalar(SumAll(a.value()));
  auto pa = a.node();
  return MakeOpResult("sum", std::move(out), {pa}, [pa](Node& n) {
    float g = n.grad.item();
    pa->AccumulateGrad(Tensor(pa->value.shape(), g));
  });
}

Variable Mean(const Variable& a) {
  int64_t count = a.value().numel();
  DAR_CHECK_GT(count, 0);
  Tensor out = Tensor::Scalar(MeanAll(a.value()));
  auto pa = a.node();
  return MakeOpResult("mean", std::move(out), {pa}, [pa, count](Node& n) {
    float g = n.grad.item() / static_cast<float>(count);
    pa->AccumulateGrad(Tensor(pa->value.shape(), g));
  });
}

Variable SumTime(const Variable& x) {
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 3);
  int64_t b = xv.size(0), t = xv.size(1), e = xv.size(2);
  Tensor out(Shape{b, e});
  {
    const float* px = xv.data();
    float* po = out.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t tt = 0; tt < t; ++tt) {
        const float* src = px + (i * t + tt) * e;
        float* dst = po + i * e;
        for (int64_t j = 0; j < e; ++j) dst[j] += src[j];
      }
    }
  }
  auto pn = x.node();
  return MakeOpResult("sum_time", std::move(out), {pn}, [pn, b, t, e](Node& n) {
    Tensor g(pn->value.shape());
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < b; ++i) {
      const float* src = pg + i * e;
      for (int64_t tt = 0; tt < t; ++tt) {
        float* dst = pgo + (i * t + tt) * e;
        for (int64_t j = 0; j < e; ++j) dst[j] = src[j];
      }
    }
    pn->AccumulateGrad(g);
  });
}

Variable RowSum(const Variable& x) {
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 2);
  int64_t m = xv.size(0), c = xv.size(1);
  Tensor out(Shape{m});
  {
    const float* px = xv.data();
    float* po = out.data();
    for (int64_t i = 0; i < m; ++i) {
      float acc = 0.0f;
      for (int64_t j = 0; j < c; ++j) acc += px[i * c + j];
      po[i] = acc;
    }
  }
  auto pn = x.node();
  return MakeOpResult("row_sum", std::move(out), {pn}, [pn, m, c](Node& n) {
    Tensor g(pn->value.shape());
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < c; ++j) pgo[i * c + j] = pg[i];
    }
    pn->AccumulateGrad(g);
  });
}

}  // namespace ag
}  // namespace dar
