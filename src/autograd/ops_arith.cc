#include <utility>

#include "autograd/ops.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = dar::Add(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeOpResult("add", std::move(out), {pa, pb}, [pa, pb](Node& n) {
    if (pa->requires_grad) pa->AccumulateGrad(n.grad);
    if (pb->requires_grad) pb->AccumulateGrad(n.grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = dar::Sub(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeOpResult("sub", std::move(out), {pa, pb}, [pa, pb](Node& n) {
    if (pa->requires_grad) pa->AccumulateGrad(n.grad);
    if (pb->requires_grad) pb->AccumulateGrad(dar::Neg(n.grad));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = dar::Mul(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeOpResult("mul", std::move(out), {pa, pb}, [pa, pb](Node& n) {
    if (pa->requires_grad) pa->AccumulateGrad(dar::Mul(n.grad, pb->value));
    if (pb->requires_grad) pb->AccumulateGrad(dar::Mul(n.grad, pa->value));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor out = dar::Div(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeOpResult("div", std::move(out), {pa, pb}, [pa, pb](Node& n) {
    if (pa->requires_grad) pa->AccumulateGrad(dar::Div(n.grad, pb->value));
    if (pb->requires_grad) {
      // d(a/b)/db = -a / b^2
      Tensor g = dar::Div(dar::Mul(n.grad, pa->value),
                          dar::Mul(pb->value, pb->value));
      pb->AccumulateGrad(dar::Neg(g));
    }
  });
}

Variable Neg(const Variable& a) {
  Tensor out = dar::Neg(a.value());
  auto pa = a.node();
  return MakeOpResult("neg", std::move(out), {pa}, [pa](Node& n) {
    pa->AccumulateGrad(dar::Neg(n.grad));
  });
}

Variable AddScalar(const Variable& a, float s) {
  Tensor out = dar::AddScalar(a.value(), s);
  auto pa = a.node();
  return MakeOpResult("add_scalar", std::move(out), {pa},
                      [pa](Node& n) { pa->AccumulateGrad(n.grad); });
}

Variable MulScalar(const Variable& a, float s) {
  Tensor out = dar::MulScalar(a.value(), s);
  auto pa = a.node();
  return MakeOpResult("mul_scalar", std::move(out), {pa}, [pa, s](Node& n) {
    pa->AccumulateGrad(dar::MulScalar(n.grad, s));
  });
}

Variable AddBias(const Variable& matrix, const Variable& bias) {
  Tensor out = dar::AddRowBroadcast(matrix.value(), bias.value());
  auto pm = matrix.node();
  auto pb = bias.node();
  return MakeOpResult("add_bias", std::move(out), {pm, pb}, [pm, pb](Node& n) {
    if (pm->requires_grad) pm->AccumulateGrad(n.grad);
    if (pb->requires_grad) pb->AccumulateGrad(dar::SumRows(n.grad));
  });
}

Variable ScaleLastDim(const Variable& x, const Variable& s) {
  const Tensor& xv = x.value();
  const Tensor& sv = s.value();
  DAR_CHECK_EQ(xv.dim(), 3);
  DAR_CHECK_EQ(sv.dim(), 2);
  int64_t b = xv.size(0), t = xv.size(1), e = xv.size(2);
  DAR_CHECK_EQ(sv.size(0), b);
  DAR_CHECK_EQ(sv.size(1), t);
  Tensor out(xv.shape());
  {
    const float* px = xv.data();
    const float* ps = sv.data();
    float* po = out.data();
    for (int64_t i = 0; i < b * t; ++i) {
      float sc = ps[i];
      for (int64_t j = 0; j < e; ++j) po[i * e + j] = sc * px[i * e + j];
    }
  }
  auto px_node = x.node();
  auto ps_node = s.node();
  return MakeOpResult("scale_last_dim", 
      std::move(out), {px_node, ps_node}, [px_node, ps_node, b, t, e](Node& n) {
        const float* pg = n.grad.data();
        if (px_node->requires_grad) {
          Tensor gx(px_node->value.shape());
          const float* ps = ps_node->value.data();
          float* pgx = gx.data();
          for (int64_t i = 0; i < b * t; ++i) {
            float sc = ps[i];
            for (int64_t j = 0; j < e; ++j) pgx[i * e + j] = sc * pg[i * e + j];
          }
          px_node->AccumulateGrad(gx);
        }
        if (ps_node->requires_grad) {
          Tensor gs(ps_node->value.shape());
          const float* px = px_node->value.data();
          float* pgs = gs.data();
          for (int64_t i = 0; i < b * t; ++i) {
            float acc = 0.0f;
            for (int64_t j = 0; j < e; ++j) acc += pg[i * e + j] * px[i * e + j];
            pgs[i] = acc;
          }
          ps_node->AccumulateGrad(gs);
        }
      });
}

Variable ScaleRows(const Variable& x, const Variable& s) {
  const Tensor& xv = x.value();
  const Tensor& sv = s.value();
  DAR_CHECK_EQ(xv.dim(), 2);
  DAR_CHECK_EQ(sv.dim(), 1);
  int64_t m = xv.size(0), c = xv.size(1);
  DAR_CHECK_EQ(sv.size(0), m);
  Tensor out(xv.shape());
  {
    const float* px = xv.data();
    const float* ps = sv.data();
    float* po = out.data();
    for (int64_t i = 0; i < m; ++i) {
      float sc = ps[i];
      for (int64_t j = 0; j < c; ++j) po[i * c + j] = sc * px[i * c + j];
    }
  }
  auto px_node = x.node();
  auto ps_node = s.node();
  return MakeOpResult("scale_rows", 
      std::move(out), {px_node, ps_node}, [px_node, ps_node, m, c](Node& n) {
        const float* pg = n.grad.data();
        if (px_node->requires_grad) {
          Tensor gx(px_node->value.shape());
          const float* ps = ps_node->value.data();
          float* pgx = gx.data();
          for (int64_t i = 0; i < m; ++i) {
            float sc = ps[i];
            for (int64_t j = 0; j < c; ++j) pgx[i * c + j] = sc * pg[i * c + j];
          }
          px_node->AccumulateGrad(gx);
        }
        if (ps_node->requires_grad) {
          Tensor gs(ps_node->value.shape());
          const float* px = px_node->value.data();
          float* pgs = gs.data();
          for (int64_t i = 0; i < m; ++i) {
            float acc = 0.0f;
            for (int64_t j = 0; j < c; ++j) acc += pg[i * c + j] * px[i * c + j];
            pgs[i] = acc;
          }
          ps_node->AccumulateGrad(gs);
        }
      });
}

}  // namespace ag
}  // namespace dar
