#include <cmath>
#include <memory>
#include <utility>

#include "autograd/ops.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {

Variable SoftmaxRowsOp(const Variable& logits) {
  Tensor out = SoftmaxRows(logits.value());
  auto pn = logits.node();
  auto saved = std::make_shared<Tensor>(out);
  return MakeOpResult("softmax_rows", std::move(out), {pn}, [pn, saved](Node& n) {
    // dL/dx_j = y_j * (g_j - sum_k g_k y_k) per row.
    int64_t m = saved->size(0), c = saved->size(1);
    Tensor g(saved->shape());
    const float* py = saved->data();
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < m; ++i) {
      const float* yrow = py + i * c;
      const float* grow = pg + i * c;
      float dot = 0.0f;
      for (int64_t j = 0; j < c; ++j) dot += grow[j] * yrow[j];
      float* orow = pgo + i * c;
      for (int64_t j = 0; j < c; ++j) orow[j] = yrow[j] * (grow[j] - dot);
    }
    pn->AccumulateGrad(g);
  });
}

Variable LogSoftmaxRowsOp(const Variable& logits) {
  Tensor out = LogSoftmaxRows(logits.value());
  auto pn = logits.node();
  auto saved = std::make_shared<Tensor>(out);
  return MakeOpResult("log_softmax_rows", std::move(out), {pn}, [pn, saved](Node& n) {
    // dL/dx_j = g_j - softmax_j * sum_k g_k per row.
    int64_t m = saved->size(0), c = saved->size(1);
    Tensor g(saved->shape());
    const float* plog = saved->data();
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < m; ++i) {
      const float* lrow = plog + i * c;
      const float* grow = pg + i * c;
      float gsum = 0.0f;
      for (int64_t j = 0; j < c; ++j) gsum += grow[j];
      float* orow = pgo + i * c;
      for (int64_t j = 0; j < c; ++j) orow[j] = grow[j] - std::exp(lrow[j]) * gsum;
    }
    pn->AccumulateGrad(g);
  });
}

Variable PickColumns(const Variable& x, const std::vector<int64_t>& index) {
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 2);
  int64_t m = xv.size(0), c = xv.size(1);
  DAR_CHECK_EQ(static_cast<int64_t>(index.size()), m);
  Tensor out(Shape{m});
  for (int64_t i = 0; i < m; ++i) {
    int64_t j = index[static_cast<size_t>(i)];
    DAR_CHECK(j >= 0 && j < c);
    out.at(i) = xv.at(i, j);
  }
  auto pn = x.node();
  auto idx = std::make_shared<std::vector<int64_t>>(index);
  return MakeOpResult("pick_columns", std::move(out), {pn}, [pn, idx, m, c](Node& n) {
    Tensor g(pn->value.shape());
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < m; ++i) {
      pgo[i * c + (*idx)[static_cast<size_t>(i)]] = pg[i];
    }
    pn->AccumulateGrad(g);
  });
}

}  // namespace ag
}  // namespace dar
