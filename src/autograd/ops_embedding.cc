#include <memory>
#include <utility>

#include "autograd/ops.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {

Variable EmbeddingLookup(const Variable& table,
                         const std::vector<std::vector<int64_t>>& ids) {
  const Tensor& tv = table.value();
  DAR_CHECK_EQ(tv.dim(), 2);
  int64_t vocab = tv.size(0), e = tv.size(1);
  int64_t b = static_cast<int64_t>(ids.size());
  DAR_CHECK_GT(b, 0);
  int64_t t = static_cast<int64_t>(ids[0].size());
  Tensor out(Shape{b, t, e});
  {
    const float* pt = tv.data();
    float* po = out.data();
    for (int64_t i = 0; i < b; ++i) {
      DAR_CHECK_EQ(static_cast<int64_t>(ids[static_cast<size_t>(i)].size()), t);
      for (int64_t tt = 0; tt < t; ++tt) {
        int64_t id = ids[static_cast<size_t>(i)][static_cast<size_t>(tt)];
        DAR_CHECK(id >= 0 && id < vocab);
        const float* src = pt + id * e;
        float* dst = po + (i * t + tt) * e;
        for (int64_t j = 0; j < e; ++j) dst[j] = src[j];
      }
    }
  }
  auto pn = table.node();
  auto saved_ids = std::make_shared<std::vector<std::vector<int64_t>>>(ids);
  return MakeOpResult("embedding_lookup", std::move(out), {pn}, [pn, saved_ids, b, t, e](Node& n) {
    Tensor g(pn->value.shape());
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t tt = 0; tt < t; ++tt) {
        int64_t id = (*saved_ids)[static_cast<size_t>(i)][static_cast<size_t>(tt)];
        const float* src = pg + (i * t + tt) * e;
        float* dst = pgo + id * e;
        for (int64_t j = 0; j < e; ++j) dst[j] += src[j];
      }
    }
    pn->AccumulateGrad(g);
  });
}

}  // namespace ag
}  // namespace dar
