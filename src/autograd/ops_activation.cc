#include <cmath>
#include <utility>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {

namespace {

/// Helper for unary ops whose gradient is a function of the *output* value
/// (sigmoid, tanh, exp, sqrt) or of the *input* value (relu, abs, log).
template <typename GradFn>
Variable UnaryFromOutput(const char* op, const Variable& a, Tensor out,
                         GradFn grad_of_output) {
  auto pa = a.node();
  auto pout = std::make_shared<Tensor>(out);
  return MakeOpResult(op, std::move(out), {pa},
                      [pa, pout, grad_of_output](Node& n) {
                        Tensor g(n.grad.shape());
                        const float* pg = n.grad.data();
                        const float* po = pout->data();
                        float* pgo = g.data();
                        for (int64_t i = 0; i < n.grad.numel(); ++i) {
                          pgo[i] = pg[i] * grad_of_output(po[i]);
                        }
                        pa->AccumulateGrad(g);
                      });
}

template <typename GradFn>
Variable UnaryFromInput(const char* op, const Variable& a, Tensor out,
                        GradFn grad_of_input) {
  auto pa = a.node();
  return MakeOpResult(op, std::move(out), {pa}, [pa, grad_of_input](Node& n) {
    Tensor g(n.grad.shape());
    const float* pg = n.grad.data();
    const float* pi = pa->value.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < n.grad.numel(); ++i) {
      pgo[i] = pg[i] * grad_of_input(pi[i]);
    }
    pa->AccumulateGrad(g);
  });
}

}  // namespace

Variable Sigmoid(const Variable& a) {
  return UnaryFromOutput("sigmoid", a, dar::Sigmoid(a.value()),
                         [](float y) { return y * (1.0f - y); });
}

Variable Tanh(const Variable& a) {
  return UnaryFromOutput("tanh", a, dar::Tanh(a.value()),
                         [](float y) { return 1.0f - y * y; });
}

Variable Relu(const Variable& a) {
  return UnaryFromInput("relu", a, dar::Relu(a.value()),
                        [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Variable Exp(const Variable& a) {
  return UnaryFromOutput("exp", a, dar::Exp(a.value()), [](float y) { return y; });
}

Variable Log(const Variable& a, float eps) {
  return UnaryFromInput("log", a, dar::Log(a.value(), eps), [eps](float x) {
    return 1.0f / (x > eps ? x : eps);
  });
}

Variable Abs(const Variable& a) {
  return UnaryFromInput("abs", a, dar::Abs(a.value()), [](float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}

Variable Sqrt(const Variable& a) {
  return UnaryFromOutput("sqrt", a, dar::Sqrt(a.value()), [](float y) {
    return y > 1e-12f ? 0.5f / y : 0.0f;
  });
}

Variable StraightThroughRound(const Variable& a) {
  Tensor out = dar::Map(a.value(), [](float x) { return x > 0.5f ? 1.0f : 0.0f; });
  auto pa = a.node();
  // Straight-through estimator: the rounding is treated as identity in the
  // backward pass (Jang et al. 2017; used by RNP-style generators to emit
  // hard binary masks while keeping the game differentiable).
  return MakeOpResult("straight_through_round", std::move(out), {pa},
                      [pa](Node& n) { pa->AccumulateGrad(n.grad); });
}

Variable GradientReversal(const Variable& a, float lambda) {
  Tensor out = a.value();
  auto pa = a.node();
  return MakeOpResult("gradient_reversal", std::move(out), {pa}, [pa, lambda](Node& n) {
    pa->AccumulateGrad(dar::MulScalar(n.grad, -lambda));
  });
}

}  // namespace ag
}  // namespace dar
