#include <utility>

#include "autograd/ops.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {

Variable Reshape(const Variable& a, Shape shape) {
  Tensor out = a.value().Reshape(shape);
  auto pa = a.node();
  Shape original = a.value().shape();
  return MakeOpResult("reshape", std::move(out), {pa}, [pa, original](Node& n) {
    pa->AccumulateGrad(n.grad.Reshape(original));
  });
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  Tensor out = dar::ConcatCols(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  int64_t na = a.value().size(1);
  int64_t nb = b.value().size(1);
  return MakeOpResult("concat_cols", std::move(out), {pa, pb}, [pa, pb, na, nb](Node& n) {
    int64_t m = n.grad.size(0);
    const float* pg = n.grad.data();
    if (pa->requires_grad) {
      Tensor ga(Shape{m, na});
      float* p = ga.data();
      for (int64_t i = 0; i < m; ++i) {
        const float* src = pg + i * (na + nb);
        for (int64_t j = 0; j < na; ++j) p[i * na + j] = src[j];
      }
      pa->AccumulateGrad(ga);
    }
    if (pb->requires_grad) {
      Tensor gb(Shape{m, nb});
      float* p = gb.data();
      for (int64_t i = 0; i < m; ++i) {
        const float* src = pg + i * (na + nb) + na;
        for (int64_t j = 0; j < nb; ++j) p[i * nb + j] = src[j];
      }
      pb->AccumulateGrad(gb);
    }
  });
}

Variable SliceCols(const Variable& a, int64_t start, int64_t len) {
  const Tensor& av = a.value();
  DAR_CHECK_EQ(av.dim(), 2);
  int64_t m = av.size(0), n_cols = av.size(1);
  DAR_CHECK(start >= 0 && len > 0 && start + len <= n_cols);
  Tensor out(Shape{m, len});
  {
    const float* pa = av.data();
    float* po = out.data();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < len; ++j) po[i * len + j] = pa[i * n_cols + start + j];
    }
  }
  auto pn = a.node();
  return MakeOpResult("slice_cols", std::move(out), {pn}, [pn, m, n_cols, start, len](Node& n) {
    Tensor g(pn->value.shape());
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < len; ++j) pgo[i * n_cols + start + j] = pg[i * len + j];
    }
    pn->AccumulateGrad(g);
  });
}

Variable SliceTimeOp(const Variable& x, int64_t t) {
  Tensor out = dar::SliceTime(x.value(), t);
  auto pn = x.node();
  return MakeOpResult("slice_time", std::move(out), {pn}, [pn, t](Node& n) {
    Tensor g(pn->value.shape());
    SetTime(g, t, n.grad);
    pn->AccumulateGrad(g);
  });
}

Variable StackTimeOp(const std::vector<Variable>& steps) {
  DAR_CHECK(!steps.empty());
  int64_t t_len = static_cast<int64_t>(steps.size());
  const Tensor& first = steps[0].value();
  DAR_CHECK_EQ(first.dim(), 2);
  int64_t b = first.size(0), e = first.size(1);
  Tensor out(Shape{b, t_len, e});
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(steps.size());
  for (int64_t t = 0; t < t_len; ++t) {
    DAR_CHECK(steps[static_cast<size_t>(t)].value().shape() == first.shape());
    SetTime(out, t, steps[static_cast<size_t>(t)].value());
    parents.push_back(steps[static_cast<size_t>(t)].node());
  }
  auto parents_copy = parents;
  return MakeOpResult("stack_time", std::move(out), std::move(parents),
                      [parents_copy, t_len](Node& n) {
                        for (int64_t t = 0; t < t_len; ++t) {
                          const auto& p = parents_copy[static_cast<size_t>(t)];
                          if (p->requires_grad) {
                            p->AccumulateGrad(dar::SliceTime(n.grad, t));
                          }
                        }
                      });
}

Variable TimeDiff(const Variable& x) {
  const Tensor& xv = x.value();
  DAR_CHECK_EQ(xv.dim(), 2);
  int64_t b = xv.size(0), t = xv.size(1);
  DAR_CHECK_GT(t, 1);
  Tensor out(Shape{b, t - 1});
  {
    const float* px = xv.data();
    float* po = out.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < t - 1; ++j) {
        po[i * (t - 1) + j] = px[i * t + j + 1] - px[i * t + j];
      }
    }
  }
  auto pn = x.node();
  return MakeOpResult("time_diff", std::move(out), {pn}, [pn, b, t](Node& n) {
    Tensor g(pn->value.shape());
    const float* pg = n.grad.data();
    float* pgo = g.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < t - 1; ++j) {
        float gv = pg[i * (t - 1) + j];
        pgo[i * t + j + 1] += gv;
        pgo[i * t + j] -= gv;
      }
    }
    pn->AccumulateGrad(g);
  });
}

Variable SliceRows(const Variable& a, int64_t start, int64_t len) {
  const Tensor& av = a.value();
  DAR_CHECK_EQ(av.dim(), 2);
  int64_t m = av.size(0), n_cols = av.size(1);
  DAR_CHECK(start >= 0 && len > 0 && start + len <= m);
  Tensor out(Shape{len, n_cols});
  std::copy(av.data() + start * n_cols, av.data() + (start + len) * n_cols,
            out.data());
  auto pn = a.node();
  return MakeOpResult("slice_rows", std::move(out), {pn}, [pn, start, len, n_cols](Node& n) {
    Tensor g(pn->value.shape());
    std::copy(n.grad.data(), n.grad.data() + len * n_cols,
              g.data() + start * n_cols);
    pn->AccumulateGrad(g);
  });
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  DAR_CHECK(!parts.empty());
  int64_t n_cols = parts[0].value().size(1);
  int64_t total_rows = 0;
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(parts.size());
  for (const Variable& p : parts) {
    DAR_CHECK_EQ(p.value().dim(), 2);
    DAR_CHECK_EQ(p.value().size(1), n_cols);
    total_rows += p.value().size(0);
    parents.push_back(p.node());
  }
  Tensor out(Shape{total_rows, n_cols});
  int64_t row = 0;
  for (const Variable& p : parts) {
    const Tensor& pv = p.value();
    std::copy(pv.data(), pv.data() + pv.numel(), out.data() + row * n_cols);
    row += pv.size(0);
  }
  auto parents_copy = parents;
  return MakeOpResult("concat_rows", std::move(out), std::move(parents),
                      [parents_copy, n_cols](Node& n) {
                        int64_t r = 0;
                        for (const auto& p : parents_copy) {
                          int64_t rows = p->value.size(0);
                          if (p->requires_grad) {
                            Tensor g(Shape{rows, n_cols});
                            std::copy(n.grad.data() + r * n_cols,
                                      n.grad.data() + (r + rows) * n_cols,
                                      g.data());
                            p->AccumulateGrad(g);
                          }
                          r += rows;
                        }
                      });
}

}  // namespace ag
}  // namespace dar
