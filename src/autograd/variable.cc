#include "autograd/variable.h"

#include <unordered_set>
#include <utility>

#include "check/sentinel.h"
#include "tensor/check.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {

namespace {

/// Claims `n` for the calling thread's tape token. Returns true when this
/// call took the claim (and must release it); a foreign owner is reported
/// as a tape violation. Only called with the sentinel enabled.
bool ClaimTapeNode(Node* n, uint32_t token, const char* what) {
  uint32_t expected = 0;
  if (n->tape_owner.compare_exchange_strong(expected, token,
                                            std::memory_order_acq_rel)) {
    return true;
  }
  if (expected != token) check::ReportTapeViolation(what);
  return false;
}

}  // namespace

void Node::AccumulateGrad(const Tensor& g) {
  DAR_CHECK_MSG(g.shape() == value.shape(), "gradient shape mismatch");
  if (grad.numel() != value.numel() || grad.shape() != value.shape()) {
    grad = Tensor(value.shape());
  }
  ++grad_visits;
  AddInPlace(grad, g);
}

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Variable Variable::Param(Tensor value) { return Variable(std::move(value), true); }

Variable Variable::Constant(Tensor value) {
  return Variable(std::move(value), false);
}

const Tensor& Variable::value() const {
  DAR_CHECK_MSG(defined(), "use of null Variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  DAR_CHECK_MSG(defined(), "use of null Variable");
  return node_->value;
}

const Tensor& Variable::grad() const {
  DAR_CHECK_MSG(defined(), "use of null Variable");
  DAR_CHECK_MSG(node_->grad.numel() == node_->value.numel(),
                "grad accessed before backward");
  return node_->grad;
}

bool Variable::has_grad() const {
  return defined() && node_->grad.numel() == node_->value.numel() &&
         node_->grad.numel() > 0;
}

void Variable::ZeroGrad() {
  DAR_CHECK(defined());
  if (node_->grad.numel() == node_->value.numel()) {
    node_->grad.Zero();
  } else {
    node_->grad = Tensor(node_->value.shape());
  }
  node_->grad_visits = 0;
}

void Variable::AccumulateGrad(const Tensor& g) {
  DAR_CHECK(defined());
  if (check::SentinelEnabled()) {
    // The cross-thread reduce primitive: assert that no other thread is
    // concurrently accumulating into (or backpropagating through) this
    // leaf, per the tape contract.
    const uint32_t token = check::TapeOwnerToken();
    const bool claimed =
        ClaimTapeNode(node_.get(), token, "Variable::AccumulateGrad");
    node_->AccumulateGrad(g);
    if (claimed) {
      node_->tape_owner.store(0, std::memory_order_release);
    }
    return;
  }
  node_->AccumulateGrad(g);
}

bool Variable::requires_grad() const { return defined() && node_->requires_grad; }

void Variable::set_requires_grad(bool requires_grad) {
  DAR_CHECK(defined());
  node_->requires_grad = requires_grad;
}

namespace {

/// Iterative post-order DFS producing parents-before-children order; the
/// returned list is consumed back-to-front by Backward. Iterative rather
/// than recursive: GRU graphs have O(batch * time) depth and would overflow
/// the stack under recursion.
void TopoSort(const std::shared_ptr<Node>& root,
              std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (!root->requires_grad) return;
  stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* parent = f.node->parents[f.next_parent++].get();
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() const {
  DAR_CHECK(defined());
  DAR_CHECK_MSG(node_->value.numel() == 1,
                "Backward() without seed requires a scalar output");
  Backward(Tensor(node_->value.shape(), 1.0f));
}

void Variable::Backward(const Tensor& seed) const {
  DAR_CHECK(defined());
  DAR_CHECK_MSG(node_->requires_grad,
                "Backward on a node that does not require grad");
  node_->AccumulateGrad(seed);
  std::vector<Node*> order;
  TopoSort(node_, order);
  if (!check::SentinelEnabled()) {
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Node* n = *it;
      if (n->backward && n->grad.numel() == n->value.numel()) {
        n->backward(*n);
      }
    }
    return;
  }
  // Sentinel path: claim the whole tape before running any closure (a
  // foreign claim means two threads share graph nodes — the contract
  // violation), and scan every gradient flowing through for NaN/Inf.
  const uint32_t token = check::TapeOwnerToken();
  std::vector<Node*> claimed;
  claimed.reserve(order.size());
  for (Node* n : order) {
    if (ClaimTapeNode(n, token, "Variable::Backward")) claimed.push_back(n);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward && n->grad.numel() == n->value.numel()) {
      check::ScanForNonFinite(n->op, "grad", n->grad.data(), n->grad.numel());
      n->backward(*n);
    }
  }
  for (Node* n : claimed) {
    n->tape_owner.store(0, std::memory_order_release);
  }
}

Variable Variable::Detach() const {
  DAR_CHECK(defined());
  return Variable::Constant(node_->value);
}

Variable MakeOpResult(const char* op, Tensor value,
                      std::vector<std::shared_ptr<Node>> parents,
                      std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op = op;
  if (check::SentinelEnabled()) {
    check::ScanForNonFinite(op, "value", node->value.data(),
                            node->value.numel());
  }
  bool any = false;
  for (const auto& p : parents) {
    DAR_CHECK(p != nullptr);
    if (p->requires_grad) any = true;
  }
  node->requires_grad = any;
  if (any) {
    node->parents = std::move(parents);
    node->backward = std::move(backward);
  }
  return Variable(std::move(node));
}

}  // namespace ag
}  // namespace dar
