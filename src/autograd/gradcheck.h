// Numerical gradient checking.
//
// Validates an analytic gradient by central finite differences. Used by the
// test suite to certify every autograd op and every nn module.
#ifndef DAR_AUTOGRAD_GRADCHECK_H_
#define DAR_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace dar {
namespace ag {

/// Result of a gradient check.
struct GradCheckResult {
  bool ok = false;
  /// Maximum elementwise |analytic - numeric| over all checked inputs.
  float max_abs_error = 0.0f;
  /// Where the maximum occurred ("input 1, element 7").
  std::string worst_location;
};

/// Checks d(scalar fn(inputs)) / d(inputs) against central differences.
///
/// `fn` must build a fresh graph from the passed leaves and return a scalar
/// Variable. Each leaf in `inputs` must require grad. The check perturbs
/// every element of every input by ±eps and compares.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    const std::vector<Tensor>& inputs, float eps = 1e-3f, float tol = 2e-2f);

}  // namespace ag
}  // namespace dar

#endif  // DAR_AUTOGRAD_GRADCHECK_H_
