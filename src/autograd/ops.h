// Differentiable operations over ag::Variable.
//
// Each function runs the forward kernel (tensor/tensor_ops.h) and records a
// backward closure. Implementations are split by family across the
// autograd/ops_*.cc files. All ops are shape-checked; gradient correctness
// is validated by tests/autograd_gradcheck_test.cc against numerical
// differentiation.
#ifndef DAR_AUTOGRAD_OPS_H_
#define DAR_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace dar {
namespace ag {

// ---- Arithmetic (ops_arith.cc) ---------------------------------------------

/// Elementwise a + b (equal shapes).
Variable Add(const Variable& a, const Variable& b);
/// Elementwise a - b (equal shapes).
Variable Sub(const Variable& a, const Variable& b);
/// Elementwise a * b (equal shapes).
Variable Mul(const Variable& a, const Variable& b);
/// Elementwise a / b (equal shapes). b must be nonzero.
Variable Div(const Variable& a, const Variable& b);
/// Elementwise -a.
Variable Neg(const Variable& a);
/// Elementwise a + s.
Variable AddScalar(const Variable& a, float s);
/// Elementwise a * s.
Variable MulScalar(const Variable& a, float s);
/// Adds a length-n bias row to each row of an [m, n] matrix.
Variable AddBias(const Variable& matrix, const Variable& bias);
/// Scales each [*, *, e] fiber of x [B, T, E] by s[b, t]. This is the
/// rationale-masking primitive: Z = M ⊙ X at the embedding level (eq. 1).
Variable ScaleLastDim(const Variable& x, const Variable& s);
/// Scales row i of x [m, n] by s[i]. Used to gate GRU state updates at
/// padded positions.
Variable ScaleRows(const Variable& x, const Variable& s);

// ---- Matrix multiplication (ops_matmul.cc) ----------------------------------

/// [m, k] x [k, n] -> [m, n].
Variable MatMul(const Variable& a, const Variable& b);
/// a [m, k] x b^T for b [n, k] -> [m, n]. Attention-score helper.
Variable MatMulNT(const Variable& a, const Variable& b);

// ---- Activations (ops_activation.cc) ---------------------------------------

Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
Variable Exp(const Variable& a);
/// log(max(a, eps)); gradient is 1/max(a, eps).
Variable Log(const Variable& a, float eps = 1e-12f);
/// |a|; gradient is sign(a) (0 at 0).
Variable Abs(const Variable& a);
Variable Sqrt(const Variable& a);
/// Forward: round(a) to {0,1}; backward: identity (straight-through
/// estimator). Used to binarize Gumbel-softmax selection probabilities.
Variable StraightThroughRound(const Variable& a);
/// Forward: identity; backward: gradient scaled by -lambda. The adversarial
/// plumbing of the 3PLAYER and CAR baselines (the generator *maximizes*
/// what a downstream player minimizes).
Variable GradientReversal(const Variable& a, float lambda = 1.0f);

// ---- Reductions (ops_reduce.cc) ---------------------------------------------

/// Sum of all elements -> scalar.
Variable Sum(const Variable& a);
/// Mean of all elements -> scalar.
Variable Mean(const Variable& a);
/// Sums a [B, T, E] tensor over time -> [B, E].
Variable SumTime(const Variable& x);
/// Sums an [m, n] matrix over columns -> [m].
Variable RowSum(const Variable& x);

// ---- Shape (ops_shape.cc) -----------------------------------------------------

/// Same data, new shape (element counts must match).
Variable Reshape(const Variable& a, Shape shape);
/// Concatenates [m, na] and [m, nb] into [m, na + nb].
Variable ConcatCols(const Variable& a, const Variable& b);
/// Columns [start, start + len) of an [m, n] matrix.
Variable SliceCols(const Variable& a, int64_t start, int64_t len);
/// Time-step t of [B, T, E] -> [B, E].
Variable SliceTimeOp(const Variable& x, int64_t t);
/// Stacks T tensors of shape [B, E] into [B, T, E].
Variable StackTimeOp(const std::vector<Variable>& steps);
/// out[b, t] = x[b, t + 1] - x[b, t] for x [B, T] -> [B, T-1]. Coherence
/// term of the rationale regularizer (eq. 3).
Variable TimeDiff(const Variable& x);
/// Rows [start, start + len) of an [m, n] matrix -> [len, n].
Variable SliceRows(const Variable& a, int64_t start, int64_t len);
/// Vertically concatenates matrices with equal column counts.
Variable ConcatRows(const std::vector<Variable>& parts);

// ---- Softmax (ops_softmax.cc) -----------------------------------------------

/// Row-wise softmax of an [m, n] matrix.
Variable SoftmaxRowsOp(const Variable& logits);
/// Row-wise log-softmax of an [m, n] matrix.
Variable LogSoftmaxRowsOp(const Variable& logits);
/// out[i] = x[i, index[i]] for x [m, n] -> [m]. With LogSoftmaxRowsOp this
/// forms the cross-entropy loss.
Variable PickColumns(const Variable& x, const std::vector<int64_t>& index);

// ---- Embedding (ops_embedding.cc) --------------------------------------------

/// Gathers rows of `table` [V, E] by token ids [B][T] -> [B, T, E].
/// Backward scatter-adds into the table (dense row accumulation).
Variable EmbeddingLookup(const Variable& table,
                         const std::vector<std::vector<int64_t>>& ids);

}  // namespace ag
}  // namespace dar

#endif  // DAR_AUTOGRAD_OPS_H_
