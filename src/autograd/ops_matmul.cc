// Matrix-product ops. Forward and backward all route through the three
// tensor_ops wrappers, and those share one blocked GEMM kernel
// (tensor/gemm.h) for every transpose orientation — the backward's
// dC*B^T / A^T*dC products ride the same packed fast path as the forward,
// with no transpose ever materialized.
#include <utility>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace dar {
namespace ag {

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = dar::MatMul(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeOpResult("matmul", std::move(out), {pa, pb}, [pa, pb](Node& n) {
    // dA = dC * B^T ; dB = A^T * dC
    if (pa->requires_grad) pa->AccumulateGrad(dar::MatMulTB(n.grad, pb->value));
    if (pb->requires_grad) pb->AccumulateGrad(dar::MatMulTA(pa->value, n.grad));
  });
}

Variable MatMulNT(const Variable& a, const Variable& b) {
  Tensor out = dar::MatMulTB(a.value(), b.value());
  auto pa = a.node();
  auto pb = b.node();
  return MakeOpResult("matmul_nt", std::move(out), {pa, pb}, [pa, pb](Node& n) {
    // C = A B^T: dA = dC * B ; dB = dC^T * A.
    if (pa->requires_grad) pa->AccumulateGrad(dar::MatMul(n.grad, pb->value));
    if (pb->requires_grad) pb->AccumulateGrad(dar::MatMulTA(n.grad, pa->value));
  });
}

}  // namespace ag
}  // namespace dar
