#include "autograd/gradcheck.h"

#include <cmath>
#include <sstream>

#include "tensor/check.h"

namespace dar {
namespace ag {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    const std::vector<Tensor>& inputs, float eps, float tol) {
  GradCheckResult result;
  result.ok = true;

  // Analytic gradients.
  std::vector<Variable> leaves;
  leaves.reserve(inputs.size());
  for (const Tensor& t : inputs) leaves.push_back(Variable::Param(t));
  Variable out = fn(leaves);
  DAR_CHECK_MSG(out.value().numel() == 1, "gradcheck requires a scalar output");
  out.Backward();

  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    const Tensor& analytic = leaves[vi].grad();
    for (int64_t i = 0; i < inputs[vi].numel(); ++i) {
      // Central difference: re-evaluate fn at x ± eps for this element.
      auto eval_at = [&](float delta) {
        std::vector<Variable> probe;
        probe.reserve(inputs.size());
        for (size_t vj = 0; vj < inputs.size(); ++vj) {
          Tensor t = inputs[vj];
          if (vj == vi) t.flat(i) += delta;
          probe.push_back(Variable::Param(std::move(t)));
        }
        return fn(probe).value().item();
      };
      float numeric = (eval_at(eps) - eval_at(-eps)) / (2.0f * eps);
      float err = std::fabs(numeric - analytic.flat(i));
      if (err > result.max_abs_error) {
        result.max_abs_error = err;
        std::ostringstream os;
        os << "input " << vi << ", element " << i << " (analytic "
           << analytic.flat(i) << ", numeric " << numeric << ")";
        result.worst_location = os.str();
      }
      if (err > tol) result.ok = false;
    }
  }
  return result;
}

}  // namespace ag
}  // namespace dar
