// Tape-based reverse-mode automatic differentiation.
//
// A Variable is a shared handle to a node in a dynamically built computation
// graph. Operations on Variables (declared in autograd/ops.h) record a
// backward closure; Variable::Backward() runs the closures in reverse
// topological order and accumulates gradients into every reachable node
// that requires them.
//
// Graphs are built per forward pass and released when the last Variable
// handle goes out of scope, mirroring the define-by-run style of the
// training loops in the paper's reference implementation.
//
// Thread compatibility (the data-parallel training contract): the engine
// keeps NO global or thread-local state — every tape is exactly the Node
// graph reachable from the Variables a thread created, and Backward() walks
// only that graph. Concurrent forward/backward passes are therefore safe
// whenever the graphs are disjoint, i.e. the threads share no Variable
// handles. The per-thread replicas of core::DataParallelTrainer satisfy
// this by construction: each replica owns its parameters, so its tape never
// reaches another thread's nodes. What is NOT safe is two threads running
// Backward() into the *same* leaf concurrently (AccumulateGrad is not
// atomic) — reductions across threads must serialize, as the trainer's
// gradient reduce does.
//
// This contract is mechanically enforced when the numerical sentinel
// (check/sentinel.h) is enabled: Backward() claims every node it visits
// with a per-thread ownership token and a claim that finds a foreign owner
// reports a tape violation, as does a racing Variable::AccumulateGrad.
#ifndef DAR_AUTOGRAD_VARIABLE_H_
#define DAR_AUTOGRAD_VARIABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace dar {
namespace ag {

/// Internal graph node. Users interact through Variable; this struct is
/// public only so that op implementations (ops_*.cc) can build nodes.
struct Node {
  /// Forward value.
  Tensor value;

  /// Accumulated gradient w.r.t. `value`; empty until first accumulation.
  Tensor grad;

  /// Whether gradients should flow to (and through) this node.
  bool requires_grad = false;

  /// Static name of the op that produced this node ("leaf" for leaves).
  /// Drives sentinel attribution (check/sentinel.h) and GraphAudit's
  /// per-op gradient-norm breakdown. Must point at a string literal.
  const char* op = "leaf";

  /// AccumulateGrad calls into this node since construction (leaves: since
  /// the last ZeroGrad). GraphAudit compares the count against the graph's
  /// fan-in to detect a second Backward() without an intervening ZeroGrad.
  int32_t grad_visits = 0;

  /// Sentinel tape-ownership mark (0 = unclaimed). Only touched when the
  /// sentinel is enabled; enforces the thread-safety contract above.
  std::atomic<uint32_t> tape_owner{0};

  /// Parent nodes (inputs of the op that produced this node).
  std::vector<std::shared_ptr<Node>> parents;

  /// Propagates `grad` of this node into the parents' grads. Null for leaves.
  std::function<void(Node&)> backward;

  /// Accumulates `g` into this node's gradient (allocates on first use).
  void AccumulateGrad(const Tensor& g);
};

/// A differentiable value: shared handle to a graph Node.
///
/// Copying a Variable copies the handle (both refer to the same node), which
/// is what training code wants: parameters are Variables held by modules and
/// by the optimizer simultaneously.
class Variable {
 public:
  /// Null handle; most APIs DAR_CHECK against using one.
  Variable() = default;

  /// Leaf node wrapping `value`.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// Leaf parameter (requires_grad = true).
  static Variable Param(Tensor value);

  /// Non-differentiable constant leaf.
  static Variable Constant(Tensor value);

  /// True if this handle points at a node.
  bool defined() const { return node_ != nullptr; }

  /// Forward value (read).
  const Tensor& value() const;

  /// Forward value (mutable; used by optimizers to update parameters
  /// in place between steps — never mutate mid-graph).
  Tensor& mutable_value();

  /// Accumulated gradient. DAR_CHECKs that a gradient exists.
  const Tensor& grad() const;

  /// True once a gradient has been accumulated into this node.
  bool has_grad() const;

  /// Clears the gradient buffer (kept allocated) ahead of the next backward.
  void ZeroGrad();

  /// Accumulates `g` (same shape as the value) into this node's gradient,
  /// exactly as backpropagation would. Data-parallel training reduces
  /// per-replica gradients into the master parameters through this.
  void AccumulateGrad(const Tensor& g);

  bool requires_grad() const;

  /// Enables/disables gradient flow into this leaf. Only meaningful for
  /// leaves (parameters); used to freeze pretrained modules.
  void set_requires_grad(bool requires_grad);

  Shape shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }

  /// Runs backpropagation from this node. If `seed` is omitted the node
  /// must be scalar and is seeded with 1.0. Gradients accumulate — call
  /// ZeroGrad on parameters (or Optimizer::ZeroGrad) between steps.
  void Backward() const;
  void Backward(const Tensor& seed) const;

  /// Cuts the graph: returns a constant leaf with the same value. Used to
  /// stop gradients (e.g., the frozen discriminator inputs in DAR do not
  /// backprop into the predictor through auxiliary losses).
  Variable Detach() const;

  /// Op-construction helper: wraps an existing node.
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  /// Op-construction helper: underlying node.
  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Builds a result node from an op: `op` is the op's static name (string
/// literal; recorded on the node for sentinel attribution and GraphAudit),
/// `value` is the forward result, `parents` the differentiable inputs, and
/// `backward` the closure that pushes this node's gradient into the
/// parents. The result requires grad iff any parent does; otherwise the
/// closure is dropped and the graph is not retained (inference stays
/// allocation-light). When the numerical sentinel is enabled the forward
/// value is scanned for NaN/Inf here, regardless of grad retention.
Variable MakeOpResult(const char* op, Tensor value,
                      std::vector<std::shared_ptr<Node>> parents,
                      std::function<void(Node&)> backward);

}  // namespace ag
}  // namespace dar

#endif  // DAR_AUTOGRAD_VARIABLE_H_
