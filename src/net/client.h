// Minimal blocking HTTP/1.1 client for tests and the loopback bench.
//
// One HttpClient is one keep-alive connection to a numeric-IPv4 host. It
// connects lazily, writes a serialized request, and parses status line +
// headers + Content-Length body with its own small response parser (the
// HttpParser in net/http.h is request-grammar only). Not thread-safe; use
// one client per thread — the concurrency tests do exactly that.
#ifndef DAR_NET_CLIENT_H_
#define DAR_NET_CLIENT_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/http.h"

namespace dar {
namespace net {

/// A parsed response: status + lowercased headers + body.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Whether the server allows this connection to be reused.
  bool keep_alive = true;

  const std::string* FindHeader(const std::string& lowercase_name) const;

  /// The X-DAR-Trace-Id the server assigned this request ("" when the
  /// server runs with tracing disabled). Paste it into
  /// GET /debug/trace/<id> to pull the request's span tree.
  std::string trace_id() const {
    const std::string* header = FindHeader("x-dar-trace-id");
    return header != nullptr ? *header : "";
  }
};

class HttpClient {
 public:
  /// `host` must be a numeric IPv4 address (the serving stack binds
  /// loopback by default). No connection is made until the first request.
  HttpClient(std::string host, int port, int timeout_ms = 5000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Sends one request and reads the response, reconnecting first if the
  /// connection is gone (fresh, or closed by the server after a
  /// Connection: close response). nullopt + error() on socket failure,
  /// timeout, or unparsable response.
  std::optional<ClientResponse> Get(const std::string& target);
  std::optional<ClientResponse> Post(const std::string& target,
                                     const std::string& body,
                                     const std::string& content_type =
                                         "application/json");

  /// Generic form used by Get/Post.
  std::optional<ClientResponse> Request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Propagates trace context on every subsequent request: `value` is sent
  /// verbatim as the `traceparent` header (W3C format, see
  /// obs::FormatTraceparent) unless a per-request header list already
  /// carries one. Empty string clears it. The server joins the caller's
  /// trace instead of minting a fresh id — the returned
  /// ClientResponse::trace_id() then shares the caller's 32-hex prefix.
  void set_traceparent(std::string value) {
    traceparent_ = std::move(value);
  }
  const std::string& traceparent() const { return traceparent_; }

  /// Human-readable detail for the last nullopt return.
  const std::string& error() const { return error_; }

  /// True while the keep-alive connection is up.
  bool connected() const { return fd_ >= 0; }

  /// Drops the connection (the next request reconnects).
  void Disconnect();

 private:
  bool Connect();
  bool SendAll(const std::string& data);
  /// Reads and parses one response into `out`. False + error_ on failure.
  bool ReadResponse(ClientResponse* out);

  std::string host_;
  int port_;
  int timeout_ms_;
  int fd_ = -1;
  std::string traceparent_;  // "" = do not send the header
  std::string error_;
  std::string carry_;  // bytes read past the previous response
};

}  // namespace net
}  // namespace dar

#endif  // DAR_NET_CLIENT_H_
