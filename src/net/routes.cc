#include "net/routes.h"

#include <chrono>
#include <utility>
#include <vector>

#include "tensor/check.h"

namespace dar {
namespace net {

namespace {

/// Latency buckets for http.request_latency_us, microseconds. Spans the
/// sub-millisecond /healthz hits through multi-second saturated predicts.
const std::vector<double> kLatencyBoundsUs = {
    100,    250,    500,     1000,    2500,    5000,    10000,
    25000,  50000,  100000,  250000,  500000,  1000000, 2500000};

HttpResponse JsonResponse(int status, const JsonValue& value) {
  HttpResponse response;
  response.status = status;
  response.body = value.Dump();
  return response;
}

HttpResponse JsonError(int status, const std::string& detail) {
  return JsonResponse(status, JsonValue::Object()
                                  .Set("error", JsonValue::Str(
                                                    StatusReason(status)))
                                  .Set("detail", JsonValue::Str(detail)));
}

HttpResponse MethodNotAllowed(const std::string& allow) {
  HttpResponse response =
      JsonError(405, "method not allowed; see the Allow header");
  response.extra_headers.push_back({"Allow", allow});
  return response;
}

/// Splits "/v1/models/<name>/predict" -> <name>; empty when the path is
/// not of that shape. Model names may contain any byte except '/'.
std::string PredictModelName(const std::string& path) {
  const std::string prefix = "/v1/models/";
  const std::string suffix = "/predict";
  if (path.size() <= prefix.size() + suffix.size()) return "";
  if (path.compare(0, prefix.size(), prefix) != 0) return "";
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return "";
  }
  std::string name = path.substr(
      prefix.size(), path.size() - prefix.size() - suffix.size());
  if (name.find('/') != std::string::npos) return "";
  return name;
}

JsonValue ResultToJson(const std::string& model,
                       const serve::InferenceResult& result) {
  JsonValue probs = JsonValue::Array();
  for (float p : result.probs) probs.Push(JsonValue::Number(p));
  JsonValue tokens = JsonValue::Array();
  for (const auto& t : result.tokens) tokens.Push(JsonValue::Str(t));
  JsonValue mask = JsonValue::Array();
  for (uint8_t m : result.mask) mask.Push(JsonValue::Int(m));
  JsonValue spans = JsonValue::Array();
  for (const auto& span : result.spans) {
    spans.Push(JsonValue::Object()
                   .Set("begin", JsonValue::Int(span.begin))
                   .Set("end", JsonValue::Int(span.end)));
  }
  return JsonValue::Object()
      .Set("model", JsonValue::Str(model))
      .Set("label", JsonValue::Int(result.label))
      .Set("confidence", JsonValue::Number(result.confidence))
      .Set("probs", std::move(probs))
      .Set("tokens", std::move(tokens))
      .Set("rationale", JsonValue::Object()
                            .Set("mask", std::move(mask))
                            .Set("spans", std::move(spans))
                            .Set("text", JsonValue::Str(
                                             result.rationale_text)));
}

}  // namespace

Router::Router(serve::ModelRegistry& registry, RouterConfig config)
    : registry_(&registry), config_(std::move(config)) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  registry_->PublishMetrics(metrics_);
  if (config_.serve.cache.enabled) {
    cache_ = std::make_unique<serve::ServeCache>(config_.serve.cache);
    cache_->PublishMetrics(metrics_);
    registry_->AttachCache(cache_.get());
  }
}

Router::~Router() {
  // Endpoints (and their batchers) drain in the map's destructor; nothing
  // else references them once the server feeding Handle() has stopped.
}

void Router::ServeModel(const std::string& name,
                        std::shared_ptr<serve::InferenceSession> session) {
  DAR_CHECK(session != nullptr);
  // Register first: this rebinds the session's stats under {model=name}
  // before any request can reach it through the endpoint map.
  registry_->Register(name, session);
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->session = session;
  endpoint->batcher =
      std::make_unique<serve::MicroBatcher>(*session, config_.batcher);
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[name] = std::move(endpoint);  // old endpoint freed by last user
}

std::shared_ptr<Router::Endpoint> Router::FindEndpoint(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

std::function<HttpResponse(const HttpRequest&)> Router::AsHandler() {
  return [this](const HttpRequest& request) { return Handle(request); };
}

HttpResponse Router::Handle(const HttpRequest& request) {
  auto start = std::chrono::steady_clock::now();
  std::string route = "unmatched";
  std::string model;
  HttpResponse response = Dispatch(request, route, model);

  double elapsed_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  std::vector<std::pair<std::string, std::string>> labels = {
      {"route", route}, {"code", std::to_string(response.status)}};
  if (!model.empty()) labels.insert(labels.begin() + 1, {"model", model});
  metrics_
      ->GetCounter(obs::LabeledName("http.requests_total", labels))
      .Increment();
  metrics_
      ->GetHistogram(
          obs::LabeledName("http.request_latency_us", {{"route", route}}),
          kLatencyBoundsUs)
      .Observe(elapsed_us);
  return response;
}

HttpResponse Router::Dispatch(const HttpRequest& request, std::string& route,
                              std::string& model) {
  const std::string path = request.Path();

  if (path == "/healthz") {
    route = "healthz";
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleHealthz();
  }
  if (path == "/metrics") {
    route = "metrics";
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleMetrics();
  }
  if (path == "/v1/models") {
    route = "models";
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleModels();
  }
  std::string name = PredictModelName(path);
  if (!name.empty()) {
    route = "predict";
    model = name;
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandlePredict(name, request);
  }
  return JsonError(404, "no route for " + path);
}

HttpResponse Router::HandleHealthz() {
  size_t models;
  {
    std::lock_guard<std::mutex> lock(mu_);
    models = endpoints_.size();
  }
  return JsonResponse(200, JsonValue::Object()
                               .Set("status", JsonValue::Str("ok"))
                               .Set("models", JsonValue::Int(
                                                  static_cast<int64_t>(
                                                      models))));
}

HttpResponse Router::HandleMetrics() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = metrics_->ExportPrometheus();
  return response;
}

HttpResponse Router::HandleModels() {
  JsonValue models = JsonValue::Array();
  for (const std::string& name : registry_->Names()) {
    auto session = registry_->Get(name);
    if (session == nullptr) continue;  // unregistered between calls
    models.Push(
        JsonValue::Object()
            .Set("name", JsonValue::Str(name))
            .Set("method", JsonValue::Str(session->model().name()))
            .Set("vocab_size", JsonValue::Int(session->vocab().size()))
            .Set("predict_path", JsonValue::Str("/v1/models/" + name +
                                                "/predict")));
  }
  return JsonResponse(200,
                      JsonValue::Object().Set("models", std::move(models)));
}

HttpResponse Router::HandlePredict(const std::string& name,
                                   const HttpRequest& request) {
  auto endpoint = FindEndpoint(name);
  if (endpoint == nullptr) {
    return JsonError(404, "model '" + name + "' is not registered");
  }

  std::string parse_error;
  auto payload = JsonValue::Parse(request.body, &parse_error);
  if (!payload.has_value()) {
    return JsonError(400, "request body is not valid JSON: " + parse_error);
  }
  const JsonValue* text = payload->Find("text");
  if (text == nullptr || !text->is_string()) {
    return JsonError(400, "request body must be {\"text\": \"...\"}");
  }

  auto future = endpoint->batcher->TrySubmit(text->string_value);
  if (!future.has_value()) {
    // The batching queue is at capacity: shed immediately instead of
    // parking a connection thread behind the model (the acceptance bar —
    // saturation must answer 503, never hang).
    HttpResponse response =
        JsonError(503, "model '" + name + "' queue is full, retry later");
    response.extra_headers.push_back({"Retry-After", "1"});
    return response;
  }
  serve::InferenceResult result = future->get();
  HttpResponse response = JsonResponse(200, ResultToJson(name, result));
  if (result.cache != serve::CacheOutcome::kUncached) {
    // Header only — the body stays bit-identical to the uncached path.
    response.extra_headers.push_back(
        {"X-DAR-Cache", serve::CacheOutcomeName(result.cache)});
  }
  return response;
}

}  // namespace net
}  // namespace dar
