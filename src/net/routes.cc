#include "net/routes.h"

#include <chrono>
#include <utility>
#include <vector>

#include "obs/sync_metrics.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/gemm.h"

namespace dar {
namespace net {

namespace {

/// Latency buckets for http.request_latency_us, microseconds. Spans the
/// sub-millisecond /healthz hits through multi-second saturated predicts.
const std::vector<double> kLatencyBoundsUs = {
    100,    250,    500,     1000,    2500,    5000,    10000,
    25000,  50000,  100000,  250000,  500000,  1000000, 2500000};

HttpResponse JsonResponse(int status, const JsonValue& value) {
  HttpResponse response;
  response.status = status;
  response.body = value.Dump();
  return response;
}

HttpResponse JsonError(int status, const std::string& detail) {
  return JsonResponse(status, JsonValue::Object()
                                  .Set("error", JsonValue::Str(
                                                    StatusReason(status)))
                                  .Set("detail", JsonValue::Str(detail)));
}

HttpResponse MethodNotAllowed(const std::string& allow) {
  HttpResponse response =
      JsonError(405, "method not allowed; see the Allow header");
  response.extra_headers.push_back({"Allow", allow});
  return response;
}

/// Splits "/v1/models/<name>/predict" -> <name>; empty when the path is
/// not of that shape. Model names may contain any byte except '/'.
std::string PredictModelName(const std::string& path) {
  const std::string prefix = "/v1/models/";
  const std::string suffix = "/predict";
  if (path.size() <= prefix.size() + suffix.size()) return "";
  if (path.compare(0, prefix.size(), prefix) != 0) return "";
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return "";
  }
  std::string name = path.substr(
      prefix.size(), path.size() - prefix.size() - suffix.size());
  if (name.find('/') != std::string::npos) return "";
  return name;
}

JsonValue ResultToJson(const std::string& model,
                       const serve::InferenceResult& result) {
  JsonValue probs = JsonValue::Array();
  for (float p : result.probs) probs.Push(JsonValue::Number(p));
  JsonValue tokens = JsonValue::Array();
  for (const auto& t : result.tokens) tokens.Push(JsonValue::Str(t));
  JsonValue mask = JsonValue::Array();
  for (uint8_t m : result.mask) mask.Push(JsonValue::Int(m));
  JsonValue spans = JsonValue::Array();
  for (const auto& span : result.spans) {
    spans.Push(JsonValue::Object()
                   .Set("begin", JsonValue::Int(span.begin))
                   .Set("end", JsonValue::Int(span.end)));
  }
  return JsonValue::Object()
      .Set("model", JsonValue::Str(model))
      .Set("label", JsonValue::Int(result.label))
      .Set("confidence", JsonValue::Number(result.confidence))
      .Set("probs", std::move(probs))
      .Set("tokens", std::move(tokens))
      .Set("rationale", JsonValue::Object()
                            .Set("mask", std::move(mask))
                            .Set("spans", std::move(spans))
                            .Set("text", JsonValue::Str(
                                             result.rationale_text)));
}

}  // namespace

Router::Router(serve::ModelRegistry& registry, RouterConfig config)
    : registry_(&registry), config_(std::move(config)) {
  // Kernel-thread knob before any traffic: responses are bit-identical for
  // any value (gemm.h), so this only moves serve.forward latency.
  if (config_.serve.kernel_threads > 0) {
    gemm::SetKernelThreads(config_.serve.kernel_threads);
  }
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  registry_->PublishMetrics(metrics_);
  if (config_.serve.cache.enabled) {
    cache_ = std::make_unique<serve::ServeCache>(config_.serve.cache);
    cache_->PublishMetrics(metrics_);
    registry_->AttachCache(cache_.get());
  }
  if (config_.tracing.enabled) {
    tracer_ = std::make_unique<obs::RequestTracer>(config_.tracing);
  }
  metrics_->SetExemplarMaxAgeUs(config_.tracing.exemplar_max_age_us);
}

Router::~Router() {
  // Endpoints (and their batchers) drain in the map's destructor; nothing
  // else references them once the server feeding Handle() has stopped.
}

void Router::ServeModel(const std::string& name,
                        std::shared_ptr<serve::InferenceSession> session) {
  DAR_CHECK(session != nullptr);
  // Register first: this rebinds the session's stats under {model=name}
  // before any request can reach it through the endpoint map.
  registry_->Register(name, session);
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->session = session;
  endpoint->batcher =
      std::make_unique<serve::MicroBatcher>(*session, config_.batcher);
  sync::MutexLock lock(mu_);
  endpoints_[name] = std::move(endpoint);  // old endpoint freed by last user
}

std::shared_ptr<Router::Endpoint> Router::FindEndpoint(
    const std::string& name) {
  sync::MutexLock lock(mu_);
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

std::function<HttpResponse(const HttpRequest&)> Router::AsHandler() {
  return [this](const HttpRequest& request) { return Handle(request); };
}

HttpResponse Router::Handle(const HttpRequest& request) {
  auto start = std::chrono::steady_clock::now();
  std::string route = "unmatched";
  std::string model;

  // Trace identity: adopt a well-formed incoming traceparent, mint fresh
  // otherwise. A malformed header is not an error — the request proceeds
  // under its own id.
  obs::TraceContext ctx;
  std::shared_ptr<obs::TraceCollector> collector;
  if (tracer_ != nullptr) {
    const std::string* incoming = request.FindHeader("traceparent");
    if (incoming == nullptr || !obs::ParseTraceparent(*incoming, &ctx)) {
      ctx = obs::MakeTraceContext();
    }
    collector = std::make_shared<obs::TraceCollector>(ctx);
  }

  HttpResponse response;
  if (collector != nullptr) {
    obs::ScopedRequestTrace trace_guard(collector);
    obs::Span router_span("http.router");
    response = Dispatch(request, route, model);
  } else {
    response = Dispatch(request, route, model);
  }

  double elapsed_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  std::vector<std::pair<std::string, std::string>> labels = {
      {"route", route}, {"code", std::to_string(response.status)}};
  if (!model.empty()) labels.insert(labels.begin() + 1, {"model", model});
  metrics_
      ->GetCounter(obs::LabeledName("http.requests_total", labels))
      .Increment();
  obs::Histogram& latency = metrics_->GetHistogram(
      obs::LabeledName("http.request_latency_us", {{"route", route}}),
      kLatencyBoundsUs);
  if (collector != nullptr) {
    latency.ObserveWithExemplar(elapsed_us, ctx.trace_id_hi, ctx.trace_id_lo);
    tracer_->Complete(collector->Finish(route, model, response.status));
    response.extra_headers.push_back({"X-DAR-Trace-Id", obs::TraceIdHex(ctx)});
  } else {
    latency.Observe(elapsed_us);
  }
  return response;
}

HttpResponse Router::Dispatch(const HttpRequest& request, std::string& route,
                              std::string& model) {
  const std::string path = request.Path();

  if (path == "/healthz") {
    route = "healthz";
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleHealthz();
  }
  if (path == "/metrics") {
    route = "metrics";
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleMetrics();
  }
  if (path == "/v1/models") {
    route = "models";
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleModels();
  }
  const std::string debug_trace_prefix = "/debug/trace/";
  if (path == "/debug/requests" || path == "/debug/flight_recorder" ||
      path.compare(0, debug_trace_prefix.size(), debug_trace_prefix) == 0) {
    route = "debug";
    if (request.method != "GET") return MethodNotAllowed("GET");
    // Compiled in but disabled by flag: the routes do not exist.
    if (tracer_ == nullptr) {
      return JsonError(404, "request tracing is disabled");
    }
    if (path == "/debug/requests") return HandleDebugRequests();
    if (path == "/debug/flight_recorder") return HandleDebugFlightRecorder();
    return HandleDebugTrace(path.substr(debug_trace_prefix.size()));
  }
  std::string name = PredictModelName(path);
  if (!name.empty()) {
    route = "predict";
    model = name;
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandlePredict(name, request);
  }
  return JsonError(404, "no route for " + path);
}

HttpResponse Router::HandleHealthz() {
  size_t models;
  {
    sync::MutexLock lock(mu_);
    models = endpoints_.size();
  }
  return JsonResponse(200, JsonValue::Object()
                               .Set("status", JsonValue::Str("ok"))
                               .Set("models", JsonValue::Int(
                                                  static_cast<int64_t>(
                                                      models))));
}

HttpResponse Router::HandleMetrics() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  // Fold the sync layer's contention deltas in first, so the scrape that
  // follows a contended burst sees it.
  obs::PublishSyncContentionMetrics(*metrics_);
  response.body = metrics_->ExportPrometheus();
  return response;
}

HttpResponse Router::HandleModels() {
  JsonValue models = JsonValue::Array();
  for (const std::string& name : registry_->Names()) {
    auto session = registry_->Get(name);
    if (session == nullptr) continue;  // unregistered between calls
    models.Push(
        JsonValue::Object()
            .Set("name", JsonValue::Str(name))
            .Set("method", JsonValue::Str(session->model().name()))
            .Set("vocab_size", JsonValue::Int(session->vocab().size()))
            .Set("predict_path", JsonValue::Str("/v1/models/" + name +
                                                "/predict")));
  }
  return JsonResponse(200,
                      JsonValue::Object().Set("models", std::move(models)));
}

namespace {

const char* TailReasonName(uint8_t reason) {
  switch (static_cast<obs::TailReason>(reason)) {
    case obs::TailReason::kSlow:
      return "slow";
    case obs::TailReason::kError:
      return "error";
    default:
      return "none";
  }
}

JsonValue SummaryToJson(const obs::RequestSummary& summary) {
  return JsonValue::Object()
      .Set("trace_id", JsonValue::Str(summary.trace_id))
      .Set("route", JsonValue::Str(summary.route))
      .Set("model", JsonValue::Str(summary.model))
      .Set("status", JsonValue::Int(summary.status))
      .Set("latency_us", JsonValue::Int(summary.latency_us))
      .Set("start_unix_us", JsonValue::Int(summary.start_unix_us))
      .Set("total_spans",
           JsonValue::Int(static_cast<int64_t>(summary.total_spans)))
      .Set("tail_reason", JsonValue::Str(TailReasonName(summary.tail_reason)));
}

JsonValue TraceToJson(const obs::CompletedTrace& trace) {
  JsonValue spans = JsonValue::Array();
  for (const obs::SpanRecord& span : trace.spans) {
    spans.Push(JsonValue::Object()
                   .Set("name", JsonValue::Str(span.name))
                   .Set("span_id", JsonValue::Str(obs::SpanIdHex(span.span_id)))
                   .Set("parent", JsonValue::Str(
                                      obs::SpanIdHex(span.parent_span_id)))
                   .Set("start_us", JsonValue::Int(span.start_us))
                   .Set("duration_us", JsonValue::Int(span.duration_us))
                   .Set("batch_size", JsonValue::Int(span.batch_size)));
  }
  JsonValue links = JsonValue::Array();
  for (const std::string& link : trace.batch_links) {
    links.Push(JsonValue::Str(link));
  }
  return JsonValue::Object()
      .Set("summary", SummaryToJson(trace.summary))
      .Set("spans", std::move(spans))
      .Set("batch_links", std::move(links))
      .Set("total_links",
           JsonValue::Int(static_cast<int64_t>(trace.total_links)));
}

}  // namespace

HttpResponse Router::HandleDebugRequests() {
  obs::FlightRecorder& ring = tracer_->ring();
  JsonValue requests = JsonValue::Array();
  for (const obs::CompletedTrace& trace : ring.Snapshot()) {
    requests.Push(SummaryToJson(trace.summary));
  }
  return JsonResponse(200, JsonValue::Object()
                               .Set("requests", std::move(requests))
                               .Set("recorded", JsonValue::Int(
                                                    ring.recorded()))
                               .Set("dropped", JsonValue::Int(
                                                   ring.dropped())));
}

HttpResponse Router::HandleDebugTrace(const std::string& trace_id) {
  uint64_t hi = 0;
  uint64_t lo = 0;
  if (!obs::ParseTraceIdHex(trace_id, &hi, &lo)) {
    return JsonError(404, "not a trace id: expected 32 hex characters");
  }
  obs::CompletedTrace trace;
  // Canonical lowercase form — FindTrace keys exact strings.
  if (!tracer_->FindTrace(obs::TraceIdHex(hi, lo), &trace)) {
    return JsonError(404, "trace '" + trace_id +
                              "' is not in the tail store or the "
                              "flight recorder ring (it may have aged out)");
  }
  return JsonResponse(200, TraceToJson(trace));
}

HttpResponse Router::HandleDebugFlightRecorder() {
  obs::FlightRecorder& ring = tracer_->ring();
  JsonValue trace_ids = JsonValue::Array();
  for (const obs::CompletedTrace& trace : ring.Snapshot()) {
    trace_ids.Push(JsonValue::Str(trace.summary.trace_id));
  }
  return JsonResponse(
      200,
      JsonValue::Object()
          .Set("slots", JsonValue::Int(static_cast<int64_t>(ring.num_slots())))
          .Set("budget_bytes",
               JsonValue::Int(
                   static_cast<int64_t>(ring.config().budget_bytes)))
          .Set("footprint_bytes",
               JsonValue::Int(static_cast<int64_t>(ring.footprint_bytes())))
          .Set("recorded", JsonValue::Int(ring.recorded()))
          .Set("dropped", JsonValue::Int(ring.dropped()))
          .Set("tail_sampled",
               JsonValue::Int(static_cast<int64_t>(tracer_->tail().size())))
          .Set("tail_threshold_us",
               JsonValue::Int(tracer_->tail().config().latency_threshold_us))
          .Set("trace_ids", std::move(trace_ids)));
}

HttpResponse Router::HandlePredict(const std::string& name,
                                   const HttpRequest& request) {
  auto endpoint = FindEndpoint(name);
  if (endpoint == nullptr) {
    return JsonError(404, "model '" + name + "' is not registered");
  }

  std::string parse_error;
  auto payload = JsonValue::Parse(request.body, &parse_error);
  if (!payload.has_value()) {
    return JsonError(400, "request body is not valid JSON: " + parse_error);
  }
  const JsonValue* text = payload->Find("text");
  if (text == nullptr || !text->is_string()) {
    return JsonError(400, "request body must be {\"text\": \"...\"}");
  }

  auto future = endpoint->batcher->TrySubmit(text->string_value);
  if (!future.has_value()) {
    // The batching queue is at capacity: shed immediately instead of
    // parking a connection thread behind the model (the acceptance bar —
    // saturation must answer 503, never hang).
    HttpResponse response =
        JsonError(503, "model '" + name + "' queue is full, retry later");
    response.extra_headers.push_back({"Retry-After", "1"});
    return response;
  }
  serve::InferenceResult result = future->get();
  HttpResponse response = JsonResponse(200, ResultToJson(name, result));
  if (result.cache != serve::CacheOutcome::kUncached) {
    // Header only — the body stays bit-identical to the uncached path.
    response.extra_headers.push_back(
        {"X-DAR-Cache", serve::CacheOutcomeName(result.cache)});
  }
  return response;
}

}  // namespace net
}  // namespace dar
