#include "net/http.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dar {
namespace net {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

/// RFC 7230 token characters — legal in methods and header names.
bool IsTokenChar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsTokenChar);
}

/// A Connection header is a comma-separated token list; matching is
/// case-insensitive ("Keep-Alive, Upgrade" contains "keep-alive").
bool ConnectionHas(const std::string& value, const std::string& token) {
  std::string lower = ToLower(value);
  size_t pos = 0;
  while (pos <= lower.size()) {
    size_t comma = lower.find(',', pos);
    if (comma == std::string::npos) comma = lower.size();
    if (Trim(lower.substr(pos, comma - pos)) == token) return true;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    const std::string& lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

std::string HttpRequest::Path() const {
  size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 256);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "HTTP/1.1 %d %s\r\n", response.status,
                StatusReason(response.status));
  out += buf;
  out += "Content-Type: " + response.content_type + "\r\n";
  std::snprintf(buf, sizeof(buf), "Content-Length: %zu\r\n",
                response.body.size());
  out += buf;
  out += response.keep_alive ? "Connection: keep-alive\r\n"
                             : "Connection: close\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpParser::HttpParser(HttpLimits limits) : limits_(limits) {}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  request_ = HttpRequest();
  line_.clear();
  header_bytes_ = 0;
  body_remaining_ = 0;
  error_status_ = 0;
  error_detail_.clear();
}

void HttpParser::Fail(int status, const std::string& detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = detail;
}

size_t HttpParser::Feed(const char* data, size_t size) {
  size_t i = 0;
  while (i < size && state_ != State::kComplete && state_ != State::kError) {
    if (state_ == State::kBody) {
      size_t take = std::min(body_remaining_, size - i);
      request_.body.append(data + i, take);
      body_remaining_ -= take;
      i += take;
      if (body_remaining_ == 0) state_ = State::kComplete;
      continue;
    }

    char c = data[i++];
    if (c != '\n') {
      line_ += c;
      // Enforce line limits while accumulating so a request with no line
      // break ever cannot grow the buffer without bound.
      if (state_ == State::kRequestLine &&
          line_.size() > limits_.max_request_line) {
        Fail(414, "request line exceeds " +
                      std::to_string(limits_.max_request_line) + " bytes");
      } else if (state_ == State::kHeaders &&
                 header_bytes_ + line_.size() > limits_.max_header_bytes) {
        Fail(431, "header block exceeds " +
                      std::to_string(limits_.max_header_bytes) + " bytes");
      }
      continue;
    }
    // End of line; tolerate CRLF and bare LF.
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    std::string line;
    line.swap(line_);
    if (state_ == State::kRequestLine) {
      // Ignore blank line(s) before the request line (robustness note in
      // RFC 7230 §3.5 for clients that over-send CRLF after a body).
      if (line.empty()) continue;
      ParseRequestLine(line);
    } else {  // kHeaders
      header_bytes_ += line.size() + 2;
      if (line.empty()) {
        FinishHeaders();
      } else {
        ParseHeaderLine(line);
      }
    }
  }
  return i;
}

void HttpParser::ParseRequestLine(const std::string& line) {
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    Fail(400, "malformed request line");
    return;
  }
  request_.method = line.substr(0, sp1);
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = line.substr(sp2 + 1);
  if (!IsToken(request_.method)) {
    Fail(400, "malformed method token");
    return;
  }
  if (request_.target.empty() ||
      (request_.target[0] != '/' && request_.target != "*")) {
    Fail(400, "request target must be origin-form");
    return;
  }
  for (char c : request_.target) {
    if (static_cast<unsigned char>(c) <= 0x20 ||
        static_cast<unsigned char>(c) == 0x7f) {
      Fail(400, "control byte in request target");
      return;
    }
  }
  if (request_.version == "HTTP/1.1") {
    request_.keep_alive = true;
  } else if (request_.version == "HTTP/1.0") {
    request_.keep_alive = false;
  } else {
    Fail(505, "unsupported version '" + request_.version + "'");
    return;
  }
  state_ = State::kHeaders;
}

void HttpParser::ParseHeaderLine(const std::string& line) {
  if (static_cast<int64_t>(request_.headers.size()) >=
      static_cast<int64_t>(limits_.max_headers)) {
    Fail(431, "more than " + std::to_string(limits_.max_headers) +
                  " header fields");
    return;
  }
  if (line[0] == ' ' || line[0] == '\t') {
    // Obsolete line folding — deprecated, and a classic smuggling vector.
    Fail(400, "obsolete header line folding");
    return;
  }
  size_t colon = line.find(':');
  if (colon == std::string::npos) {
    Fail(400, "header line without ':'");
    return;
  }
  std::string name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Covers whitespace before the colon (response-splitting vector).
    Fail(400, "malformed header name");
    return;
  }
  std::string value = Trim(line.substr(colon + 1));
  for (char c : value) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 && c != '\t') {
      Fail(400, "control byte in header value");
      return;
    }
  }
  request_.headers.emplace_back(ToLower(name), std::move(value));
}

void HttpParser::FinishHeaders() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    Fail(501, "transfer-encoding not supported (use Content-Length)");
    return;
  }

  const std::string* connection = request_.FindHeader("connection");
  if (connection != nullptr) {
    if (ConnectionHas(*connection, "close")) {
      request_.keep_alive = false;
    } else if (ConnectionHas(*connection, "keep-alive")) {
      request_.keep_alive = true;
    }
  }

  // Content-Length: all occurrences (and comma-separated members) must
  // agree, digits only, within the body limit.
  std::string length_value;
  for (const auto& [name, value] : request_.headers) {
    if (name != "content-length") continue;
    size_t pos = 0;
    while (pos <= value.size()) {
      size_t comma = value.find(',', pos);
      if (comma == std::string::npos) comma = value.size();
      std::string member = Trim(value.substr(pos, comma - pos));
      if (length_value.empty()) {
        length_value = member;
      } else if (member != length_value) {
        Fail(400, "conflicting Content-Length values");
        return;
      }
      pos = comma + 1;
    }
  }
  if (length_value.empty()) {
    if (request_.FindHeader("content-length") != nullptr) {
      Fail(400, "empty Content-Length");
      return;
    }
    state_ = State::kComplete;  // no body
    return;
  }
  if (length_value.size() > 18 ||
      !std::all_of(length_value.begin(), length_value.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    Fail(400, "malformed Content-Length '" + length_value + "'");
    return;
  }
  uint64_t length = std::strtoull(length_value.c_str(), nullptr, 10);
  if (length > limits_.max_body_bytes) {
    Fail(413, "body of " + length_value + " bytes exceeds limit of " +
                  std::to_string(limits_.max_body_bytes));
    return;
  }
  body_remaining_ = static_cast<size_t>(length);
  request_.body.reserve(body_remaining_);
  state_ = body_remaining_ == 0 ? State::kComplete : State::kBody;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool v) {
  JsonValue value;
  value.type = Type::kBool;
  value.bool_value = v;
  return value;
}

JsonValue JsonValue::Number(double v) {
  JsonValue value;
  value.type = Type::kNumber;
  value.number_value = v;
  return value;
}

JsonValue JsonValue::Int(int64_t v) {
  return Number(static_cast<double>(v));
}

JsonValue JsonValue::Str(std::string v) {
  JsonValue value;
  value.type = Type::kString;
  value.string_value = std::move(v);
  return value;
}

JsonValue JsonValue::Array() {
  JsonValue value;
  value.type = Type::kArray;
  return value;
}

JsonValue JsonValue::Object() {
  JsonValue value;
  value.type = Type::kObject;
  return value;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  members.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Push(JsonValue value) {
  items.push_back(std::move(value));
  return *this;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

namespace {

void DumpTo(const JsonValue& v, std::string& out) {
  switch (v.type) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += v.bool_value ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      double d = v.number_value;
      if (!std::isfinite(d)) {
        out += "null";
        break;
      }
      char buf[40];
      // Integral values print exactly (labels, counts, span indices);
      // %.9g round-trips any float32 widened to double, the predict
      // response's bit-identical contract.
      if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
      } else {
        std::snprintf(buf, sizeof(buf), "%.9g", d);
      }
      out += buf;
      break;
    }
    case JsonValue::Type::kString:
      out += '"';
      out += JsonEscape(v.string_value);
      out += '"';
      break;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) out += ',';
        first = false;
        DumpTo(item, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += JsonEscape(key);
        out += "\":";
        DumpTo(value, out);
      }
      out += '}';
      break;
    }
  }
}

/// Recursive-descent JSON parser over a string view (pos-based).
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string* error) {
    JsonValue value;
    if (!ParseValue(value, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing characters after JSON value";
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(const char* literal) {
    size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Fail(std::string("invalid literal (expected '") + literal + "')");
    }
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        out = JsonValue::Null();
        return ParseLiteral("null");
      case 't':
        out = JsonValue::Bool(true);
        return ParseLiteral("true");
      case 'f':
        out = JsonValue::Bool(false);
        return ParseLiteral("false");
      case '"':
        out = JsonValue::Str("");
        return ParseString(out.string_value);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == int_start) {
      pos_ = start;
      return Fail("invalid number");
    }
    // JSON forbids leading zeros ("007").
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      pos_ = start;
      return Fail("number with leading zero");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) {
        pos_ = start;
        return Fail("number with empty fraction");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) {
        pos_ = start;
        return Fail("number with empty exponent");
      }
    }
    out = JsonValue::Number(
        std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr));
    return true;
  }

  bool ParseHex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape digit");
      }
    }
    return true;
  }

  void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseString(std::string& out) {
    ++pos_;  // opening quote
    for (;;) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control byte in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Fail("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  bool ParseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue item;
      if (!ParseValue(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key in object");
      }
      std::string key;
      if (!ParseString(key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, out);
  return out;
}

std::optional<JsonValue> JsonValue::Parse(const std::string& text,
                                          std::string* error) {
  return JsonParser(text).Parse(error);
}

}  // namespace net
}  // namespace dar
