#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace dar {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

const std::string* ClientResponse::FindHeader(
    const std::string& lowercase_name) const {
  for (const auto& header : headers) {
    if (header.first == lowercase_name) return &header.second;
  }
  return nullptr;
}

HttpClient::HttpClient(std::string host, int port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  carry_.clear();
}

bool HttpClient::Connect() {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    error_ = "inet_pton('" + host_ + "'): not a numeric IPv4 address";
    Disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "connect(" + host_ + ":" + std::to_string(port_) +
             "): " + std::strerror(errno);
    Disconnect();
    return false;
  }
  return true;
}

bool HttpClient::SendAll(const std::string& data) {
  size_t sent = 0;
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms_);
  while (sent < data.size()) {
    pollfd pfd{fd_, POLLOUT, 0};
    int remaining = RemainingMs(deadline);
    if (remaining == 0) {
      error_ = "send timed out";
      return false;
    }
    int ready = ::poll(&pfd, 1, remaining);
    if (ready <= 0) continue;
    ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("send(): ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::optional<ClientResponse> HttpClient::Get(const std::string& target) {
  return Request("GET", target);
}

std::optional<ClientResponse> HttpClient::Post(
    const std::string& target, const std::string& body,
    const std::string& content_type) {
  return Request("POST", target, body, {{"Content-Type", content_type}});
}

std::optional<ClientResponse> HttpClient::Request(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  bool caller_traceparent = false;
  for (const auto& header : headers) {
    wire += header.first + ": " + header.second + "\r\n";
    caller_traceparent |= ToLower(header.first) == "traceparent";
  }
  if (!traceparent_.empty() && !caller_traceparent) {
    wire += "traceparent: " + traceparent_ + "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n" + body;

  // One transparent retry on a fresh connection: a keep-alive peer may
  // have closed between our requests (timeout, drain), which surfaces as
  // a send error or an empty read on the reused socket.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool reused = connected();
    if (!reused && !Connect()) return std::nullopt;
    ClientResponse response;
    if (SendAll(wire) && ReadResponse(&response)) {
      if (!response.keep_alive) Disconnect();
      return response;
    }
    Disconnect();
    if (!reused) break;  // a fresh connection failing is a real error
  }
  return std::nullopt;
}

bool HttpClient::ReadResponse(ClientResponse* out) {
  // Accumulate until the header block is complete, then until the body is.
  std::string buffer = std::move(carry_);
  carry_.clear();
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms_);
  size_t header_end = std::string::npos;
  char chunk[8192];

  auto find_header_end = [&]() {
    size_t pos = buffer.find("\r\n\r\n");
    if (pos != std::string::npos) return std::make_pair(pos, size_t{4});
    pos = buffer.find("\n\n");
    if (pos != std::string::npos) return std::make_pair(pos, size_t{2});
    return std::make_pair(std::string::npos, size_t{0});
  };

  size_t separator = 0;
  for (;;) {
    auto found = find_header_end();
    header_end = found.first;
    separator = found.second;
    if (header_end != std::string::npos) break;
    int remaining = RemainingMs(deadline);
    if (remaining == 0) {
      error_ = "response headers timed out";
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, remaining);
    if (ready <= 0) continue;
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      error_ = "connection closed before response headers";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("recv(): ") + std::strerror(errno);
      return false;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  // Status line: "HTTP/1.1 200 OK".
  size_t line_end = buffer.find('\n');
  std::string status_line = buffer.substr(0, line_end);
  if (!status_line.empty() && status_line.back() == '\r') {
    status_line.pop_back();
  }
  if (status_line.compare(0, 5, "HTTP/") != 0) {
    error_ = "malformed status line: " + status_line;
    return false;
  }
  size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || sp1 + 4 > status_line.size()) {
    error_ = "malformed status line: " + status_line;
    return false;
  }
  out->status = std::atoi(status_line.c_str() + sp1 + 1);
  if (out->status < 100 || out->status > 599) {
    error_ = "implausible status in: " + status_line;
    return false;
  }
  const bool http10 = status_line.compare(0, 9, "HTTP/1.0 ") == 0;
  out->keep_alive = !http10;

  // Headers.
  size_t cursor = line_end + 1;
  while (cursor < header_end + 1) {
    size_t eol = buffer.find('\n', cursor);
    std::string line = buffer.substr(cursor, eol - cursor);
    cursor = eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;  // tolerate junk in responses
    out->headers.push_back(
        {ToLower(Trim(line.substr(0, colon))), Trim(line.substr(colon + 1))});
  }
  if (const std::string* connection = out->FindHeader("connection")) {
    std::string value = ToLower(*connection);
    if (value.find("close") != std::string::npos) out->keep_alive = false;
    if (value.find("keep-alive") != std::string::npos) out->keep_alive = true;
  }

  size_t content_length = 0;
  if (const std::string* header = out->FindHeader("content-length")) {
    content_length = static_cast<size_t>(std::strtoull(
        header->c_str(), nullptr, 10));
  }

  size_t body_start = header_end + separator;
  while (buffer.size() - body_start < content_length) {
    int remaining = RemainingMs(deadline);
    if (remaining == 0) {
      error_ = "response body timed out";
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, remaining);
    if (ready <= 0) continue;
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      error_ = "connection closed mid-body";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("recv(): ") + std::strerror(errno);
      return false;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  out->body = buffer.substr(body_start, content_length);
  // Keep any pipelined bytes for the next response on this connection.
  carry_ = buffer.substr(body_start + content_length);
  return true;
}

}  // namespace net
}  // namespace dar
