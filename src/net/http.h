// HTTP/1.1 wire format: incremental request parser, response serializer,
// and a minimal JSON reader/writer for the serving payloads.
//
// This header is the dependency-free bottom of src/net/ — C++ standard
// library only, no sockets — so the parser can be unit-tested byte by byte
// against a malformed-request corpus without ever opening a connection.
// The server (net/server.h) feeds it whatever recv() returns; the parser
// consumes bytes until exactly one request is complete (pipelined bytes
// stay unconsumed) and classifies every malformation as the 4xx/5xx status
// the connection should answer with before closing.
//
// Scope, by design: HTTP/1.1 and 1.0, Content-Length bodies only (chunked
// transfer encoding is rejected as 501), no multipart, no compression.
// That covers every client of the serving API — curl, the blocking client
// in net/client.h, and load generators — while keeping the attack surface
// a few hundred audited lines. Strict limits on request-line, header, and
// body sizes are enforced *during* parsing, so an oversized request fails
// fast without buffering unbounded input.
#ifndef DAR_NET_HTTP_H_
#define DAR_NET_HTTP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dar {
namespace net {

/// One parsed request. Header names are lowercased during parsing (HTTP
/// header names are case-insensitive); values keep their case with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (token, upper/lower preserved)
  std::string target;   // request-target as sent, e.g. "/v1/models?x=1"
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// HTTP/1.1 defaults to keep-alive unless "Connection: close";
  /// HTTP/1.0 defaults to close unless "Connection: keep-alive".
  bool keep_alive = true;

  /// First header with this (lowercase) name, or nullptr.
  const std::string* FindHeader(const std::string& lowercase_name) const;

  /// `target` with any "?query" stripped — what routing matches on.
  std::string Path() const;
};

/// One response to serialize. Content-Length and Connection headers are
/// emitted from `body`/`keep_alive`; anything else goes in extra_headers.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool keep_alive = true;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
const char* StatusReason(int status);

/// Serializes status line + headers + body, CRLF line endings throughout.
std::string SerializeResponse(const HttpResponse& response);

/// Hard parser limits; exceeding one fails the request with the mapped
/// status (414 request line, 431 headers, 413 body) instead of buffering.
struct HttpLimits {
  size_t max_request_line = 4096;
  size_t max_header_bytes = 16384;  // total header block, names + values
  size_t max_headers = 64;
  size_t max_body_bytes = size_t{1} << 20;  // 1 MiB
};

/// Incremental HTTP/1.1 request parser.
///
/// Feed() accepts arbitrary byte chunks (a byte at a time is fine) and
/// transitions kRequestLine -> kHeaders -> kBody -> kComplete, or to
/// kError with the response status the connection should send. Line
/// endings may be CRLF or bare LF (lenient receive, strict send). After a
/// complete request is consumed, Reset() readies the parser for the next
/// request on a keep-alive connection.
class HttpParser {
 public:
  enum class State { kRequestLine, kHeaders, kBody, kComplete, kError };

  explicit HttpParser(HttpLimits limits = {});

  /// Consumes up to `size` bytes; stops at the end of one complete request
  /// or at the first error. Returns the number of bytes consumed —
  /// anything unconsumed is the start of a pipelined next request (or
  /// garbage after an error) and belongs to the caller.
  size_t Feed(const char* data, size_t size);

  State state() const { return state_; }
  bool done() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }
  /// True while no byte of the current request has been consumed — an
  /// idle keep-alive connection rather than a half-received request.
  bool idle() const { return state_ == State::kRequestLine && line_.empty(); }

  /// Response status for a failed parse (400/405/413/414/431/501/505).
  int error_status() const { return error_status_; }
  const std::string& error_detail() const { return error_detail_; }

  /// The parsed request; valid once done().
  const HttpRequest& request() const { return request_; }

  /// Forgets the current request and starts parsing the next one. Limits
  /// are retained.
  void Reset();

 private:
  void Fail(int status, const std::string& detail);
  void ParseRequestLine(const std::string& line);
  void ParseHeaderLine(const std::string& line);
  /// Validates Content-Length / Transfer-Encoding / Connection once the
  /// blank line ends the header block.
  void FinishHeaders();

  HttpLimits limits_;
  State state_ = State::kRequestLine;
  HttpRequest request_;
  std::string line_;         // current line being accumulated
  size_t header_bytes_ = 0;  // running header-block size
  size_t body_remaining_ = 0;
  int error_status_ = 0;
  std::string error_detail_;
};

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed/buildable JSON value. Object member order is preserved (the
/// serving responses are stable byte-for-byte); duplicate keys are kept as
/// sent, Find returns the first.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  static JsonValue Null();
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue Int(int64_t v);
  static JsonValue Str(std::string v);
  static JsonValue Array();
  static JsonValue Object();

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Objects: first member named `key`, or nullptr (also nullptr when this
  /// value is not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Objects: appends a member. Returns *this for chaining.
  JsonValue& Set(const std::string& key, JsonValue value);

  /// Arrays: appends an item. Returns *this for chaining.
  JsonValue& Push(JsonValue value);

  /// Compact serialization (no whitespace). Numbers that hold integral
  /// values print as integers; others as shortest-ish %.9g, which
  /// round-trips any float32 exactly — the predict endpoint's bit-identical
  /// guarantee rides on this. Non-finite numbers serialize as null.
  std::string Dump() const;

  /// Strict JSON parse of the whole string (trailing garbage is an error).
  /// Nesting depth is capped at 64. nullopt + `error` detail on failure.
  static std::optional<JsonValue> Parse(const std::string& text,
                                        std::string* error = nullptr);
};

/// Escapes a string for embedding in JSON output (quotes not included).
std::string JsonEscape(const std::string& s);

}  // namespace net
}  // namespace dar

#endif  // DAR_NET_HTTP_H_
