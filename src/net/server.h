// HTTP/1.1 server over POSIX sockets.
//
// One accept thread hands each connection to a serve::ThreadPool worker
// (the pool the serving stack already standardizes on) that runs the
// read → parse → handle → write loop with keep-alive. Overload never
// queues silently and never hangs a client:
//
//   - more than `max_connections` sockets in flight → the accept thread
//     answers 503 and closes, without occupying a pool worker;
//   - per-connection read/write poll() timeouts bound how long a dead or
//     dawdling peer can hold a worker (408 on a half-sent request);
//   - the route handler returns 503 itself when the model's batching
//     queue is full (MicroBatcher::TrySubmit) — load sheds at every layer.
//
// Stop() is graceful: the listener closes first, connections finish the
// request they are serving (keep-alive connections are told
// "Connection: close" on that last response), and Stop() joins every
// worker before returning — in-flight requests drain, new ones are
// refused. Concurrency is TSan-clean by construction: each connection is
// owned by exactly one pool task, and cross-thread state is limited to
// the stop flag and the in-flight counter (both atomics) plus the metrics
// instruments (lock-free).
#ifndef DAR_NET_SERVER_H_
#define DAR_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "net/http.h"
#include "obs/metrics.h"
#include "serve/thread_pool.h"

namespace dar {
namespace net {

struct ServerConfig {
  /// Numeric IPv4 address to bind ("127.0.0.1" for loopback-only, the
  /// default; "0.0.0.0" to accept remote clients).
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for a free one (see HttpServer::port()),
  /// which is what the tests and the loopback bench use.
  int port = 0;
  /// Connection-serving pool size: at most this many requests are *in
  /// handlers* concurrently.
  int num_threads = 4;
  /// Accepted-socket cap (serving + waiting for a pool worker). The
  /// accept thread 503s past it, so a flood degrades into fast rejections
  /// instead of unbounded queueing.
  int max_connections = 64;
  /// listen(2) backlog.
  int backlog = 128;
  /// Max wait for request bytes. On a fresh/keep-alive connection this is
  /// the idle timeout (close silently); mid-request it answers 408.
  int read_timeout_ms = 5000;
  /// Max wait for the peer to drain our response.
  int write_timeout_ms = 5000;
  /// Parser limits, enforced while reading (see net/http.h).
  HttpLimits limits;
  /// When set, the server counts connections and rejections here
  /// (http.connections_total, http.connections_rejected_total). Not owned.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Application hook: one complete request in, one response out. Called on
/// a pool worker; must be thread-safe (the Router is).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer(HttpHandler handler, ServerConfig config);
  /// Stops (gracefully) if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept thread + worker pool. False
  /// (with `error` filled) when the socket setup fails; the server is then
  /// inert and Start may be retried with a different config.
  bool Start(std::string* error = nullptr);

  /// Graceful shutdown: stop accepting, serve what is in flight to
  /// completion, join every thread. Idempotent; also run by the
  /// destructor. Safe to call from any thread except a handler.
  void Stop();

  bool running() const { return running_; }

  /// The bound port (resolves config.port == 0), valid after Start().
  int port() const { return port_; }

  const ServerConfig& config() const { return config_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// write() the whole buffer with poll()-based write timeouts. False on
  /// error/timeout (connection is then abandoned).
  bool SendAll(int fd, const std::string& data);

  HttpHandler handler_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{true};
  bool running_ = false;
  std::atomic<int> in_flight_{0};
  std::thread accept_thread_;
  std::unique_ptr<serve::ThreadPool> pool_;

  // Cached instruments (nullptr when config.metrics is).
  obs::Counter* connections_total_ = nullptr;
  obs::Counter* connections_rejected_ = nullptr;
};

}  // namespace net
}  // namespace dar

#endif  // DAR_NET_SERVER_H_
