#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "tensor/check.h"

namespace dar {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds until `deadline`, floored at 0.
int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// Poll in short slices so a blocked connection notices Stop() promptly
/// without the server needing to signal every socket.
constexpr int kPollSliceMs = 100;

HttpResponse ErrorResponse(int status, const std::string& detail) {
  HttpResponse response;
  response.status = status;
  response.keep_alive = false;
  response.body = JsonValue::Object()
                      .Set("error", JsonValue::Str(StatusReason(status)))
                      .Set("detail", JsonValue::Str(detail))
                      .Dump();
  return response;
}

}  // namespace

HttpServer::HttpServer(HttpHandler handler, ServerConfig config)
    : handler_(std::move(handler)), config_(std::move(config)) {
  DAR_CHECK(handler_ != nullptr);
  DAR_CHECK_GT(config_.num_threads, 0);
  DAR_CHECK_GT(config_.max_connections, 0);
  if (config_.metrics != nullptr) {
    connections_total_ =
        &config_.metrics->GetCounter("http.connections_total");
    connections_rejected_ =
        &config_.metrics->GetCounter("http.connections_rejected_total");
  }
}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  DAR_CHECK(!running_);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket()");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton('" + config_.host + "')");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind(" + config_.host + ":" + std::to_string(config_.port) +
                ")");
  }
  if (::listen(listen_fd_, config_.backlog) != 0) return fail("listen()");

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return fail("getsockname()");
  }
  port_ = ntohs(addr.sin_port);

  stop_.store(false, std::memory_order_release);
  pool_ = std::make_unique<serve::ThreadPool>(config_.num_threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_ = true;
  return true;
}

void HttpServer::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  accept_thread_.join();
  // ThreadPool's destructor waits for every submitted connection task —
  // that is the in-flight drain. Connections notice stop_ at their next
  // poll slice and finish their current request with Connection: close.
  pool_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (stop_.load(std::memory_order_acquire)) return;
    if (ready <= 0) continue;  // timeout slice or transient poll error
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (connections_total_ != nullptr) connections_total_->Increment();
    if (in_flight_.load(std::memory_order_acquire) >=
        config_.max_connections) {
      // Shed load in the accept thread: a one-shot 503 is a small write
      // into a fresh socket buffer, so this cannot block meaningfully.
      if (connections_rejected_ != nullptr) {
        connections_rejected_->Increment();
      }
      std::string wire = SerializeResponse(
          ErrorResponse(503, "connection limit reached, retry later"));
      (void)!::write(fd, wire.data(), wire.size());
      ::close(fd);
      continue;
    }
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    pool_->Submit([this, fd] {
      HandleConnection(fd);
      ::close(fd);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
}

bool HttpServer::SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  auto deadline = Clock::now() +
                  std::chrono::milliseconds(config_.write_timeout_ms);
  while (sent < data.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    int remaining = RemainingMs(deadline);
    if (remaining == 0) return false;
    int ready = ::poll(&pfd, 1, std::min(remaining, kPollSliceMs));
    if (ready < 0) return false;
    if (ready == 0) continue;  // slice elapsed, re-check deadline
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void HttpServer::HandleConnection(int fd) {
  // MSG_NOSIGNAL on send covers SIGPIPE; keep the socket blocking and use
  // poll() for timeouts.
  HttpParser parser(config_.limits);
  std::string carry;  // pipelined bytes beyond the request just parsed
  char buf[8192];

  for (;;) {  // one iteration per request on this connection
    parser.Reset();
    if (!carry.empty()) {
      size_t used = parser.Feed(carry.data(), carry.size());
      carry.erase(0, used);
    }
    auto deadline =
        Clock::now() + std::chrono::milliseconds(config_.read_timeout_ms);
    while (!parser.done() && !parser.failed()) {
      if (stop_.load(std::memory_order_acquire) && parser.idle()) {
        return;  // draining: close idle keep-alive connections
      }
      int remaining = RemainingMs(deadline);
      if (remaining == 0) {
        if (!parser.idle()) {
          (void)SendAll(fd, SerializeResponse(ErrorResponse(
                                408, "request not received in time")));
        }
        return;
      }
      pollfd pfd{fd, POLLIN, 0};
      int ready = ::poll(&pfd, 1, std::min(remaining, kPollSliceMs));
      if (ready < 0) return;
      if (ready == 0) continue;
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return;  // peer closed
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      size_t used = parser.Feed(buf, static_cast<size_t>(n));
      if (used < static_cast<size_t>(n)) {
        carry.append(buf + used, static_cast<size_t>(n) - used);
      }
    }

    if (parser.failed()) {
      // Malformed request: answer with the parser's classification and
      // close (framing is unreliable past an error).
      (void)SendAll(fd, SerializeResponse(ErrorResponse(
                            parser.error_status(), parser.error_detail())));
      return;
    }

    HttpResponse response = handler_(parser.request());
    const bool draining = stop_.load(std::memory_order_acquire);
    response.keep_alive =
        response.keep_alive && parser.request().keep_alive && !draining;
    if (!SendAll(fd, SerializeResponse(response))) return;
    if (!response.keep_alive) return;
  }
}

}  // namespace net
}  // namespace dar
