// The serving API surface: request routing over the model registry.
//
//   POST /v1/models/<name>/predict   {"text": "..."} ->
//       {"model","label","confidence","probs","tokens","rationale":
//        {"mask","spans":[{"begin","end"}],"text"}}
//       Requests flow through the model's MicroBatcher (TrySubmit), so
//       concurrent clients coalesce into padded batches exactly like the
//       in-process serving path — responses are bit-identical to
//       InferenceSession::Predict. A full batching queue answers 503.
//   GET  /v1/models                  registry listing (name, method, ...)
//   GET  /metrics                    Prometheus text exposition of the
//                                    shared registry: per-model serving
//                                    counters (serve_requests_total{model=...})
//                                    plus the per-route HTTP metrics below
//   GET  /healthz                    liveness + model count
//   GET  /debug/requests             recent completed requests (the flight
//                                    recorder ring, newest first)
//   GET  /debug/trace/<id>           one request's span tree by trace id
//   GET  /debug/flight_recorder      ring configuration + occupancy
//
// Every handled request records http.requests_total{route=...,code=...}
// (predict adds model=...) and an http.request_latency_us{route=...}
// histogram into the same metrics registry /metrics exports.
//
// With tracing enabled (RouterConfig::tracing, the default) each request
// additionally gets a TraceContext — parsed from an incoming W3C
// `traceparent` header when present and well-formed, freshly minted
// otherwise — whose id is returned as `X-DAR-Trace-Id` and resolvable via
// /debug/trace/<id> while it remains in the tail store or the flight
// recorder ring. The /debug routes answer 404 when tracing is disabled.
#ifndef DAR_NET_ROUTES_H_
#define DAR_NET_ROUTES_H_

#include <map>
#include <memory>
#include <string>

#include "net/http.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "sync/mutex.h"

namespace dar {
namespace net {

struct RouterConfig {
  /// Batcher settings applied to every model endpoint. max_queue bounds
  /// the queue so saturation becomes 503 (TrySubmit) instead of blocked
  /// connection threads; 0 would mean "never reject".
  serve::BatcherConfig batcher = {.max_batch = 16,
                                  .max_wait_us = 200,
                                  .num_workers = 2,
                                  .max_queue = 128};
  /// Metrics registry backing /metrics and the HTTP counters; nullptr =
  /// the Router creates and owns a private one. Not owned otherwise.
  obs::MetricsRegistry* metrics = nullptr;
  /// Serving-stack configuration. When serve.cache.enabled the Router
  /// owns a ServeCache, attaches it to the model registry (every served
  /// model joins it), publishes its metrics, and stamps each predict
  /// response with an X-DAR-Cache: hit|partial|miss header. Off by
  /// default: responses are bit-identical either way, the header and the
  /// serve_cache_* series are the only observable difference.
  serve::ServeConfig serve;
  /// Request tracing (on by default). tracing.enabled=false removes the
  /// X-DAR-Trace-Id header, turns the /debug routes into 404s, and reduces
  /// the per-request cost to the untraced PR 5 path. Response bodies are
  /// bit-identical either way.
  obs::TracerConfig tracing;
};

/// Thread-safe request handler over a ModelRegistry. Pass
/// [&router](const HttpRequest& r) { return router.Handle(r); } (or
/// Router::AsHandler) to HttpServer.
class Router {
 public:
  /// Attaches to `registry` (not owned, must outlive the router) and
  /// points its per-model stats publishing at the metrics registry.
  Router(serve::ModelRegistry& registry, RouterConfig config = {});

  /// Drains and joins every model's batcher.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Registers `session` under `name` in the model registry (per-model
  /// labeled stats included) and spins up its micro-batcher. Re-serving an
  /// existing name hot-swaps: new requests route to the new session while
  /// in-flight ones finish against the old endpoint, which is destroyed
  /// (batcher drained) when the last of them releases it.
  void ServeModel(const std::string& name,
                  std::shared_ptr<serve::InferenceSession> session);

  /// Routes one request. Thread-safe; called from server pool workers.
  HttpResponse Handle(const HttpRequest& request);

  /// Convenience adapter for HttpServer's constructor.
  std::function<HttpResponse(const HttpRequest&)> AsHandler();

  /// The registry /metrics exports (the owned one unless injected).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// The serving cache, or nullptr when config.serve.cache is disabled.
  serve::ServeCache* cache() { return cache_.get(); }

  /// The request tracer, or nullptr when config.tracing is disabled. The
  /// serving example drains its tail sampler to log slow requests.
  obs::RequestTracer* tracer() { return tracer_.get(); }

 private:
  /// A served model: the session plus its batching front. shared_ptr so a
  /// hot-swap cannot pull either from under an in-flight request.
  struct Endpoint {
    std::shared_ptr<serve::InferenceSession> session;
    std::unique_ptr<serve::MicroBatcher> batcher;
  };

  std::shared_ptr<Endpoint> FindEndpoint(const std::string& name);
  HttpResponse HandlePredict(const std::string& model,
                             const HttpRequest& request);
  HttpResponse HandleModels();
  HttpResponse HandleMetrics();
  HttpResponse HandleHealthz();
  HttpResponse HandleDebugRequests();
  HttpResponse HandleDebugTrace(const std::string& trace_id);
  HttpResponse HandleDebugFlightRecorder();
  /// Wraps dispatch with the per-route counter/latency recording.
  HttpResponse Dispatch(const HttpRequest& request, std::string& route,
                        std::string& model);

  serve::ModelRegistry* registry_;
  RouterConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  std::unique_ptr<serve::ServeCache> cache_;
  std::unique_ptr<obs::RequestTracer> tracer_;

  /// kRegistry band, like the model registry it fronts: ServeModel holds
  /// mu_ only around the map swap — never across registry or batcher
  /// calls — so no higher-rank lock is ever taken under it.
  sync::Mutex mu_{sync::Rank::kRegistry, "net.router"};
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_
      DAR_GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace dar

#endif  // DAR_NET_ROUTES_H_
