#include "data/batch.h"

#include <algorithm>

#include "tensor/check.h"

namespace dar {
namespace data {

Batch Batch::FromExamples(const std::vector<Example>& examples, size_t first,
                          size_t count, int64_t pad_id) {
  DAR_CHECK_GT(count, 0u);
  DAR_CHECK_LE(first + count, examples.size());

  int64_t max_len = 0;
  for (size_t i = first; i < first + count; ++i) {
    max_len = std::max(max_len,
                       static_cast<int64_t>(examples[i].tokens.size()));
  }
  DAR_CHECK_GT(max_len, 0);

  Batch batch;
  batch.valid = Tensor(Shape{static_cast<int64_t>(count), max_len});
  batch.tokens.reserve(count);
  batch.labels.reserve(count);
  batch.rationales.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const Example& ex = examples[first + i];
    std::vector<int64_t> padded(static_cast<size_t>(max_len), pad_id);
    std::copy(ex.tokens.begin(), ex.tokens.end(), padded.begin());
    for (size_t t = 0; t < ex.tokens.size(); ++t) {
      batch.valid.at(static_cast<int64_t>(i), static_cast<int64_t>(t)) = 1.0f;
    }
    batch.tokens.push_back(std::move(padded));
    batch.labels.push_back(ex.label);

    std::vector<uint8_t> rat;
    if (!ex.rationale.empty()) {
      DAR_CHECK_EQ(ex.rationale.size(), ex.tokens.size());
      rat.assign(static_cast<size_t>(max_len), 0);
      std::copy(ex.rationale.begin(), ex.rationale.end(), rat.begin());
    }
    batch.rationales.push_back(std::move(rat));
  }
  return batch;
}

Batch Batch::FromTokenSequences(
    const std::vector<std::vector<int64_t>>& sequences, int64_t pad_id) {
  DAR_CHECK_GT(sequences.size(), 0u);
  int64_t max_len = 0;
  for (const std::vector<int64_t>& seq : sequences) {
    DAR_CHECK_GT(seq.size(), 0u);
    max_len = std::max(max_len, static_cast<int64_t>(seq.size()));
  }

  Batch batch;
  int64_t count = static_cast<int64_t>(sequences.size());
  batch.valid = Tensor(Shape{count, max_len});
  batch.tokens.reserve(sequences.size());
  batch.labels.assign(sequences.size(), 0);
  batch.rationales.assign(sequences.size(), {});
  for (size_t i = 0; i < sequences.size(); ++i) {
    const std::vector<int64_t>& seq = sequences[i];
    std::vector<int64_t> padded(static_cast<size_t>(max_len), pad_id);
    std::copy(seq.begin(), seq.end(), padded.begin());
    for (size_t t = 0; t < seq.size(); ++t) {
      batch.valid.at(static_cast<int64_t>(i), static_cast<int64_t>(t)) = 1.0f;
    }
    batch.tokens.push_back(std::move(padded));
  }
  return batch;
}

Batch SelectBatchRows(const Batch& batch, const std::vector<int64_t>& rows) {
  DAR_CHECK_GT(rows.size(), 0u);
  int64_t t = batch.max_len();
  Batch out;
  out.valid = Tensor(Shape{static_cast<int64_t>(rows.size()), t});
  out.tokens.reserve(rows.size());
  out.labels.reserve(rows.size());
  out.rationales.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    int64_t r = rows[i];
    DAR_CHECK_GE(r, 0);
    DAR_CHECK_LT(r, batch.batch_size());
    out.tokens.push_back(batch.tokens[static_cast<size_t>(r)]);
    out.labels.push_back(batch.labels[static_cast<size_t>(r)]);
    out.rationales.push_back(batch.rationales[static_cast<size_t>(r)]);
    for (int64_t j = 0; j < t; ++j) {
      out.valid.at(static_cast<int64_t>(i), j) = batch.valid.at(r, j);
    }
  }
  return out;
}

}  // namespace data
}  // namespace dar
