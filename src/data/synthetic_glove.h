// Synthetic pretrained word embeddings.
//
// Stands in for the GloVe 100-d vectors the paper uses. What the pipeline
// actually relies on is that semantically related tokens start *clustered*
// in embedding space; this module reproduces exactly that: tokens sharing a
// semantic family id are placed around a common center with small noise,
// and family-less tokens are spread isotropically.
#ifndef DAR_DATA_SYNTHETIC_GLOVE_H_
#define DAR_DATA_SYNTHETIC_GLOVE_H_

#include <cstdint>
#include <vector>

#include "tensor/random.h"
#include "tensor/tensor.h"

namespace dar {
namespace data {

/// Configuration for the synthetic embedding table.
struct SyntheticGloveConfig {
  int64_t dim = 32;
  /// Spread of family cluster centers.
  float center_scale = 1.0f;
  /// Within-family noise (smaller = tighter clusters).
  float noise_scale = 0.25f;
  /// Scale for tokens without a family (family id < 0).
  float isotropic_scale = 0.6f;
};

/// Builds a [vocab, dim] embedding table. `family` has one entry per vocab
/// id: non-negative values group tokens into clusters; negative values mean
/// "no family" (filler words, punctuation). The pad row (id 0) is zero.
Tensor BuildSyntheticGlove(const std::vector<int32_t>& family,
                           const SyntheticGloveConfig& config, Pcg32& rng);

}  // namespace data
}  // namespace dar

#endif  // DAR_DATA_SYNTHETIC_GLOVE_H_
