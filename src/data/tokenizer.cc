#include "data/tokenizer.h"

#include <cctype>
#include <sstream>

namespace dar {
namespace data {

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::vector<int64_t> Encode(const std::string& text, const Vocabulary& vocab) {
  std::vector<int64_t> ids;
  for (const std::string& tok : Tokenize(text)) ids.push_back(vocab.IdOrUnk(tok));
  return ids;
}

std::string Decode(const std::vector<int64_t>& ids, const Vocabulary& vocab) {
  std::ostringstream os;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i) os << ' ';
    os << vocab.Token(ids[i]);
  }
  return os.str();
}

}  // namespace data
}  // namespace dar
