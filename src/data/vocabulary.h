// Token vocabulary.
#ifndef DAR_DATA_VOCABULARY_H_
#define DAR_DATA_VOCABULARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dar {
namespace data {

/// Bidirectional token <-> id map with reserved <pad> (id 0) and <unk>
/// (id 1) entries.
class Vocabulary {
 public:
  static constexpr int64_t kPadId = 0;
  static constexpr int64_t kUnkId = 1;

  Vocabulary();

  /// Adds `token` if absent; returns its id either way.
  int64_t AddToken(const std::string& token);

  /// Id of `token`, or kUnkId if unknown.
  int64_t IdOrUnk(const std::string& token) const;

  /// Id of `token` if present.
  std::optional<int64_t> TryId(const std::string& token) const;

  /// Token string for `id`. `id` must be in range.
  const std::string& Token(int64_t id) const;

  /// Number of tokens including <pad> and <unk>.
  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }

  bool Contains(const std::string& token) const {
    return map_.count(token) > 0;
  }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int64_t> map_;
};

}  // namespace data
}  // namespace dar

#endif  // DAR_DATA_VOCABULARY_H_
