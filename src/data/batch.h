// Labeled examples and padded mini-batches.
#ifndef DAR_DATA_BATCH_H_
#define DAR_DATA_BATCH_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace dar {
namespace data {

/// One labeled, optionally rationale-annotated text example.
struct Example {
  /// Token ids.
  std::vector<int64_t> tokens;
  /// Class label in [0, num_classes).
  int64_t label = 0;
  /// Gold rationale mask aligned with `tokens` (1 = rationale token).
  /// Empty when the split carries no annotations (the paper's datasets are
  /// annotated on the test set only).
  std::vector<uint8_t> rationale;
};

/// A right-padded mini-batch.
struct Batch {
  /// Padded token ids, [B][T] (pad id fills the tail).
  std::vector<std::vector<int64_t>> tokens;
  /// Validity mask [B, T]: 1 for real tokens, 0 for padding.
  Tensor valid;
  /// Labels, length B.
  std::vector<int64_t> labels;
  /// Gold rationale masks padded with 0, [B][T]; empty inner vectors when
  /// the example had no annotation.
  std::vector<std::vector<uint8_t>> rationales;

  int64_t batch_size() const { return static_cast<int64_t>(tokens.size()); }
  int64_t max_len() const {
    return tokens.empty() ? 0 : static_cast<int64_t>(tokens[0].size());
  }

  /// Builds a batch from `examples[first, first + count)`, padding every
  /// sequence to the longest one with `pad_id`.
  static Batch FromExamples(const std::vector<Example>& examples, size_t first,
                            size_t count, int64_t pad_id);

  /// Builds an unlabeled batch from raw token-id sequences, padding to the
  /// longest one with `pad_id`. This is the serving path: requests arrive
  /// as bare token sequences with no labels or annotations (labels are
  /// zero-filled, rationales empty). Every sequence must be non-empty.
  static Batch FromTokenSequences(
      const std::vector<std::vector<int64_t>>& sequences, int64_t pad_id);
};

/// Extracts the given rows of `batch` into a sub-batch, PRESERVING the
/// parent's padded length (unlike re-batching the underlying examples,
/// which would re-pad to the sub-batch's longest sequence). Keeping T fixed
/// is what lets the data-parallel trainer slice one [B, T] noise tensor
/// across shards and keep every per-token computation aligned with the
/// full-batch run. `rows` must be non-empty and in range.
Batch SelectBatchRows(const Batch& batch, const std::vector<int64_t>& rows);

}  // namespace data
}  // namespace dar

#endif  // DAR_DATA_BATCH_H_
