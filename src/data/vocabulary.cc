#include "data/vocabulary.h"

#include "tensor/check.h"

namespace dar {
namespace data {

Vocabulary::Vocabulary() {
  AddToken("<pad>");
  AddToken("<unk>");
}

int64_t Vocabulary::AddToken(const std::string& token) {
  auto it = map_.find(token);
  if (it != map_.end()) return it->second;
  int64_t id = static_cast<int64_t>(tokens_.size());
  tokens_.push_back(token);
  map_.emplace(token, id);
  return id;
}

int64_t Vocabulary::IdOrUnk(const std::string& token) const {
  auto it = map_.find(token);
  return it == map_.end() ? kUnkId : it->second;
}

std::optional<int64_t> Vocabulary::TryId(const std::string& token) const {
  auto it = map_.find(token);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocabulary::Token(int64_t id) const {
  DAR_CHECK(id >= 0 && id < size());
  return tokens_[static_cast<size_t>(id)];
}

}  // namespace data
}  // namespace dar
