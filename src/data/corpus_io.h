// Plain-text corpus serialization.
//
// Lets users run the library on *real* annotated corpora (e.g. their own
// copies of BeerAdvocate / HotelReview) instead of the synthetic
// analogues. The format is one example per line:
//
//   <label> <TAB> <space-separated tokens> [<TAB> <rationale bits>]
//
// where the optional third field is a string of '0'/'1' characters, one
// per token (the paper's datasets annotate the test split only). Lines
// starting with '#' and blank lines are skipped.
#ifndef DAR_DATA_CORPUS_IO_H_
#define DAR_DATA_CORPUS_IO_H_

#include <string>
#include <vector>

#include "data/batch.h"
#include "data/vocabulary.h"

namespace dar {
namespace data {

/// Result of parsing a corpus file.
struct CorpusLoadResult {
  bool ok = false;
  /// Human-readable reason when !ok ("line 17: label not an integer").
  std::string error;
  std::vector<Example> examples;
};

/// Parses corpus text (see file-format comment above). Tokens absent from
/// `vocab` are added when `grow_vocabulary` is true and mapped to <unk>
/// otherwise.
CorpusLoadResult ParseCorpus(const std::string& text, Vocabulary& vocab,
                             bool grow_vocabulary);

/// Reads and parses a corpus file. Returns ok=false with an error message
/// if the file cannot be read or any line is malformed.
CorpusLoadResult LoadCorpusFile(const std::string& path, Vocabulary& vocab,
                                bool grow_vocabulary);

/// Serializes examples to the corpus format (inverse of ParseCorpus).
std::string FormatCorpus(const std::vector<Example>& examples,
                         const Vocabulary& vocab);

/// Writes examples to `path`. Returns false on I/O failure.
bool SaveCorpusFile(const std::string& path,
                    const std::vector<Example>& examples,
                    const Vocabulary& vocab);

}  // namespace data
}  // namespace dar

#endif  // DAR_DATA_CORPUS_IO_H_
