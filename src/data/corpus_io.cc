#include "data/corpus_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/tokenizer.h"

namespace dar {
namespace data {

namespace {

/// Splits a line on tab characters.
std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == '\t') {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

std::string LineError(size_t line_number, const std::string& message) {
  std::ostringstream os;
  os << "line " << line_number << ": " << message;
  return os.str();
}

}  // namespace

CorpusLoadResult ParseCorpus(const std::string& text, Vocabulary& vocab,
                             bool grow_vocabulary) {
  CorpusLoadResult result;
  std::istringstream stream(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() < 2 || fields.size() > 3) {
      result.error = LineError(line_number, "expected 2 or 3 tab-separated "
                                            "fields");
      return result;
    }

    Example example;
    {
      char* end = nullptr;
      long label = std::strtol(fields[0].c_str(), &end, 10);
      if (end == fields[0].c_str() || *end != '\0' || label < 0) {
        result.error = LineError(line_number, "label is not a non-negative "
                                              "integer");
        return result;
      }
      example.label = label;
    }

    std::vector<std::string> tokens = Tokenize(fields[1]);
    if (tokens.empty()) {
      result.error = LineError(line_number, "example has no tokens");
      return result;
    }
    for (const std::string& token : tokens) {
      example.tokens.push_back(grow_vocabulary ? vocab.AddToken(token)
                                               : vocab.IdOrUnk(token));
    }

    if (fields.size() == 3) {
      const std::string& bits = fields[2];
      if (bits.size() != tokens.size()) {
        result.error = LineError(
            line_number, "rationale bit-string length does not match token "
                         "count");
        return result;
      }
      for (char bit : bits) {
        if (bit != '0' && bit != '1') {
          result.error =
              LineError(line_number, "rationale field contains a character "
                                     "other than '0'/'1'");
          return result;
        }
        example.rationale.push_back(bit == '1' ? 1 : 0);
      }
    }
    result.examples.push_back(std::move(example));
  }
  result.ok = true;
  return result;
}

CorpusLoadResult LoadCorpusFile(const std::string& path, Vocabulary& vocab,
                                bool grow_vocabulary) {
  std::ifstream file(path);
  if (!file) {
    CorpusLoadResult result;
    result.error = "cannot open file: " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCorpus(buffer.str(), vocab, grow_vocabulary);
}

std::string FormatCorpus(const std::vector<Example>& examples,
                         const Vocabulary& vocab) {
  std::ostringstream os;
  os << "# <label>\\t<tokens>[\\t<rationale bits>]\n";
  for (const Example& example : examples) {
    os << example.label << '\t';
    for (size_t i = 0; i < example.tokens.size(); ++i) {
      if (i) os << ' ';
      os << vocab.Token(example.tokens[i]);
    }
    if (!example.rationale.empty()) {
      os << '\t';
      for (uint8_t bit : example.rationale) os << (bit ? '1' : '0');
    }
    os << '\n';
  }
  return os.str();
}

bool SaveCorpusFile(const std::string& path,
                    const std::vector<Example>& examples,
                    const Vocabulary& vocab) {
  std::ofstream file(path);
  if (!file) return false;
  file << FormatCorpus(examples, vocab);
  return static_cast<bool>(file);
}

}  // namespace data
}  // namespace dar
