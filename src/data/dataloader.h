// Shuffled mini-batch iteration over a dataset.
#ifndef DAR_DATA_DATALOADER_H_
#define DAR_DATA_DATALOADER_H_

#include <vector>

#include "data/batch.h"
#include "tensor/random.h"

namespace dar {
namespace data {

/// Produces padded mini-batches from an in-memory dataset.
///
/// Epoch() reshuffles (when enabled) and materializes the epoch's batches;
/// the final short batch is kept.
class DataLoader {
 public:
  DataLoader(std::vector<Example> examples, int64_t batch_size, bool shuffle,
             int64_t pad_id = 0);

  /// Batches for one epoch, in (re)shuffled order.
  std::vector<Batch> Epoch(Pcg32& rng);

  /// All examples as one batch per `batch_size` slice, unshuffled.
  /// Used for deterministic evaluation passes.
  std::vector<Batch> Sequential() const;

  int64_t num_examples() const { return static_cast<int64_t>(examples_.size()); }
  const std::vector<Example>& examples() const { return examples_; }

 private:
  std::vector<Example> examples_;
  int64_t batch_size_;
  bool shuffle_;
  int64_t pad_id_;
};

}  // namespace data
}  // namespace dar

#endif  // DAR_DATA_DATALOADER_H_
