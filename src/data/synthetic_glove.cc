#include "data/synthetic_glove.h"

#include <algorithm>
#include <unordered_map>

#include "tensor/check.h"

namespace dar {
namespace data {

Tensor BuildSyntheticGlove(const std::vector<int32_t>& family,
                           const SyntheticGloveConfig& config, Pcg32& rng) {
  int64_t vocab = static_cast<int64_t>(family.size());
  DAR_CHECK_GT(vocab, 0);
  DAR_CHECK_GT(config.dim, 0);

  // One shared center per family id, drawn lazily in family-id order so the
  // table depends only on (family, config, seed).
  int32_t max_family = -1;
  for (int32_t f : family) max_family = std::max(max_family, f);
  std::vector<Tensor> centers;
  centers.reserve(static_cast<size_t>(max_family + 1));
  for (int32_t f = 0; f <= max_family; ++f) {
    centers.push_back(
        Tensor::Randn(Shape{config.dim}, rng, config.center_scale));
  }

  Tensor table(Shape{vocab, config.dim});
  for (int64_t id = 0; id < vocab; ++id) {
    if (id == 0) continue;  // <pad> stays zero.
    int32_t f = family[static_cast<size_t>(id)];
    for (int64_t j = 0; j < config.dim; ++j) {
      if (f >= 0) {
        table.at(id, j) = centers[static_cast<size_t>(f)].at(j) +
                          rng.Normal(0.0f, config.noise_scale);
      } else {
        table.at(id, j) = rng.Normal(0.0f, config.isotropic_scale);
      }
    }
  }
  return table;
}

}  // namespace data
}  // namespace dar
