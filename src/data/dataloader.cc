#include "data/dataloader.h"

#include <utility>

#include "tensor/check.h"

namespace dar {
namespace data {

DataLoader::DataLoader(std::vector<Example> examples, int64_t batch_size,
                       bool shuffle, int64_t pad_id)
    : examples_(std::move(examples)),
      batch_size_(batch_size),
      shuffle_(shuffle),
      pad_id_(pad_id) {
  DAR_CHECK_GT(batch_size, 0);
  DAR_CHECK(!examples_.empty());
}

std::vector<Batch> DataLoader::Epoch(Pcg32& rng) {
  if (shuffle_) {
    // Fisher–Yates with our deterministic RNG.
    for (size_t i = examples_.size() - 1; i > 0; --i) {
      size_t j = rng.Below(static_cast<uint32_t>(i + 1));
      std::swap(examples_[i], examples_[j]);
    }
  }
  return Sequential();
}

std::vector<Batch> DataLoader::Sequential() const {
  std::vector<Batch> batches;
  size_t n = examples_.size();
  for (size_t first = 0; first < n; first += static_cast<size_t>(batch_size_)) {
    size_t count = std::min(static_cast<size_t>(batch_size_), n - first);
    batches.push_back(Batch::FromExamples(examples_, first, count, pad_id_));
  }
  return batches;
}

}  // namespace data
}  // namespace dar
