// Whitespace tokenizer.
#ifndef DAR_DATA_TOKENIZER_H_
#define DAR_DATA_TOKENIZER_H_

#include <string>
#include <vector>

#include "data/vocabulary.h"

namespace dar {
namespace data {

/// Splits `text` on runs of ASCII whitespace.
std::vector<std::string> Tokenize(const std::string& text);

/// Tokenizes and maps to ids (<unk> for out-of-vocabulary tokens).
std::vector<int64_t> Encode(const std::string& text, const Vocabulary& vocab);

/// Joins ids back into a space-separated string (debugging / examples).
std::string Decode(const std::vector<int64_t>& ids, const Vocabulary& vocab);

}  // namespace data
}  // namespace dar

#endif  // DAR_DATA_TOKENIZER_H_
