#!/bin/sh
# Runs every bench binary, appending all output to the file given as $1.
# Equivalent to `for b in build/bench/*; do $b; done` with progress markers.
# Includes the paper-table benches, micro_substrate, and serve_throughput
# (the serving-path requests/sec trajectory).
out="$1"
: > "$out"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "##### $b" >> "$out"
  "$b" >> "$out" 2>&1
done
echo "ALL_BENCHES_DONE" >> "$out"
